//===- tests/semantics/cache_owned_test.cpp - Owned-mode cache tests ------===//
//
// The component-owned caching protocol: beginOwned() freezes the shared
// shards for lock-free probing, each parallel task fills a private arena
// through a beginTask()/endTask() bracket, and mergePending() folds the
// arenas back into the shards at sweep barriers. These tests pin the
// protocol's single-threaded semantics (merge, combine, discard, stray
// lookups, threshold gating) and stress the concurrent shape the solver
// drives — many tasks probing frozen shards while filling arenas, with
// merges strictly at barriers — so a tsan build of this binary checks
// the lock-free reads against the barrier-time insertions.
//
//===----------------------------------------------------------------------===//

#include "semantics/Transfer.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace syntox;
using namespace syntox::test;

namespace {

class CacheOwnedTest : public ::testing::Test {
protected:
  CacheOwnedTest()
      : A(analyzeProgram("program p; var x, y : integer;\n"
                         "begin x := 1; y := 2 end.")),
        Ops(A.An->storeOps()), Exprs(Ops), Xfer(Ops, Exprs, *A.Cfg),
        X(A.var("", "x")) {}

  AbstractStore storeWithX(int64_t Lo, int64_t Hi) const {
    AbstractStore S = AbstractStore::top();
    Ops.assign(S, X, AbsValue(Interval(Lo, Hi)));
    return S;
  }

  AnalyzedProgram A;
  const StoreOps &Ops;
  ExprSemantics Exprs;
  Transfer Xfer;
  const VarDecl *X;
  FrameMap F;
  Action Nop = Action::nop();
};

TEST_F(CacheOwnedTest, ArenaFillsMergesAndSeedsTheNextSweep) {
  TransferCache Cache(Ops);
  Cache.beginOwned();
  Cache.beginTask();
  AbstractStore S = storeWithX(2, 9);
  AbstractStore R1 = *Cache.fwd(Xfer, /*EdgeId=*/0, Nop, S, F);
  EXPECT_TRUE(Ops.equal(R1, S)); // Nop is the identity
  // Second lookup inside the same task hits the arena.
  Cache.fwd(Xfer, 0, Nop, S, F);
  Cache.endTask();
  EXPECT_EQ(Cache.size(), 0u); // nothing merged yet
  Cache.mergePending();
  TransferCache::Stats St = Cache.statsSnapshot();
  EXPECT_EQ(St.TaskArenas, 1u);
  EXPECT_EQ(St.MergeInserted, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(Cache.size(), 1u);

  // The next sweep's task reads the merged entry from the frozen shards
  // without recomputing (copy-on-write seeding).
  Cache.beginTask();
  Cache.fwd(Xfer, 0, Nop, S, F);
  Cache.endTask();
  Cache.mergePending();
  St = Cache.statsSnapshot();
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(St.Misses, 1u);

  // And after thawing, the serial locked path reuses it too.
  Cache.endOwned();
  Cache.fwd(Xfer, 0, Nop, S, F);
  EXPECT_EQ(Cache.hits(), 3u);
}

TEST_F(CacheOwnedTest, MergeThresholdDiscardsEntriesWithoutArenaReuse) {
  TransferCache Cache(Ops);
  Cache.setMergeThreshold(1); // require one arena-local reuse
  Cache.beginOwned();
  Cache.beginTask();
  AbstractStore Reused = storeWithX(0, 1);
  AbstractStore Single = storeWithX(0, 2);
  Cache.fwd(Xfer, 0, Nop, Reused, F);
  Cache.fwd(Xfer, 0, Nop, Reused, F); // arena hit: proves reuse
  Cache.fwd(Xfer, 0, Nop, Single, F); // never reused
  Cache.endTask();
  Cache.mergePending();
  TransferCache::Stats St = Cache.statsSnapshot();
  EXPECT_EQ(St.MergeInserted, 1u);
  EXPECT_EQ(St.MergeDiscarded, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  Cache.endOwned();
}

TEST_F(CacheOwnedTest, DuplicateEntriesAcrossTasksCombine) {
  TransferCache Cache(Ops);
  AbstractStore S = storeWithX(5, 7);
  Cache.beginOwned();
  // Two tasks race to compute the same (edge, store): both arenas hold
  // the result, the merge keeps one and dissolves the other.
  for (int Task = 0; Task < 2; ++Task) {
    Cache.beginTask();
    Cache.fwd(Xfer, 0, Nop, S, F);
    Cache.endTask();
  }
  Cache.mergePending();
  TransferCache::Stats St = Cache.statsSnapshot();
  EXPECT_EQ(St.MergeInserted, 1u);
  EXPECT_EQ(St.MergeCombined, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  Cache.endOwned();
}

TEST_F(CacheOwnedTest, StrayLookupAnswersButNeverInserts) {
  TransferCache Cache(Ops);
  AbstractStore S = storeWithX(1, 3);
  // Populate one entry through the serial path.
  Cache.fwd(Xfer, 0, Nop, S, F);
  ASSERT_EQ(Cache.size(), 1u);
  Cache.beginOwned();
  // No task bracket: the lookup answers from the frozen shards...
  Cache.fwd(Xfer, 0, Nop, S, F);
  EXPECT_EQ(Cache.hits(), 1u);
  // ...and a stray miss computes but cannot insert.
  AbstractStore T = storeWithX(1, 4);
  AbstractStore R = *Cache.fwd(Xfer, 0, Nop, T, F);
  EXPECT_TRUE(Ops.equal(R, T));
  EXPECT_EQ(Cache.size(), 1u);
  Cache.endOwned();
  EXPECT_EQ(Cache.size(), 1u);
}

TEST_F(CacheOwnedTest, EndOwnedMergesStragglerArenas) {
  TransferCache Cache(Ops);
  Cache.beginOwned();
  Cache.beginTask();
  Cache.fwd(Xfer, 0, Nop, storeWithX(0, 9), F);
  Cache.endTask();
  // No explicit barrier: endOwned() must pick up the parked arena.
  Cache.endOwned();
  TransferCache::Stats St = Cache.statsSnapshot();
  EXPECT_EQ(St.TaskArenas, 1u);
  EXPECT_EQ(St.MergeInserted, 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

// The concurrent shape the parallel solver drives: sweeps of tasks run
// on worker threads, each bracketing a private arena and probing the
// frozen shards lock-free, with merge-back strictly between sweeps.
// Under tsan this checks the lock-free probes against the barrier-time
// insertions; under any build it checks the counters add up and every
// result is correct.
TEST_F(CacheOwnedTest, ConcurrentTasksWithMergeBarriers) {
  TransferCache Cache(Ops);
  constexpr int Threads = 4;
  constexpr int Sweeps = 6;
  constexpr int LookupsPerTask = 64;
  Cache.beginOwned();
  for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
    std::vector<std::thread> Workers;
    std::atomic<int> Bad{0};
    for (int T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        Cache.beginTask();
        for (int I = 0; I < LookupsPerTask; ++I) {
          // Overlapping key spaces: threads share most stores (frozen
          // probes + combine at merge) and own a few (fresh inserts
          // every sweep).
          int64_t Lo = (I % 16) + (I % 4 == 0 ? T : 0);
          AbstractStore S = storeWithX(Lo, Lo + 10);
          const AbstractStore *R =
              Cache.fwd(Xfer, static_cast<unsigned>(I % 8), Nop, S, F);
          if (!Ops.equal(*R, S))
            Bad.fetch_add(1, std::memory_order_relaxed);
        }
        Cache.endTask();
      });
    for (std::thread &W : Workers)
      W.join();
    EXPECT_EQ(Bad.load(), 0);
    Cache.mergePending(); // barrier: no task in flight
  }
  Cache.endOwned();
  TransferCache::Stats St = Cache.statsSnapshot();
  EXPECT_EQ(St.TaskArenas, static_cast<uint64_t>(Threads * Sweeps));
  EXPECT_EQ(St.Hits + St.Misses,
            static_cast<uint64_t>(Threads * Sweeps * LookupsPerTask));
  // Every distinct (edge, store) pair was eventually merged: later
  // sweeps replay entirely from the shards, so misses stay well below
  // one sweep's lookup volume times the sweep count.
  EXPECT_EQ(St.Size, St.MergeInserted);
  EXPECT_GT(St.Hits, St.Misses);
}

} // namespace
