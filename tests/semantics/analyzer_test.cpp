//===- tests/semantics/analyzer_test.cpp - End-to-end analysis tests ------===//
//
// The acceptance tests for the paper's central claims: every Figure 1
// condition, the McCarthy §6.5 facts, exact aliasing of reference
// parameters, and non-local jumps.
//
//===----------------------------------------------------------------------===//

#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

//===----------------------------------------------------------------------===//
// Forward analysis basics
//===----------------------------------------------------------------------===//

// Several tests below assert the concrete value of a variable at a
// point where it is *dead* (typically the program exit): under the
// default liveness pruning those slots are intentionally untracked and
// read as top, so these run with prune(false). They pin transfer
// precision; liveness_prune_test pins pruned-vs-unpruned equivalence.

TEST(ForwardAnalysisTest, CountingLoop) {
  auto A = analyzeProgram("program p; var i : integer;\n"
                          "begin\n"
                          "  i := 0;\n"
                          "  while i < 100 do\n"
                          "    i := i + 1\n"
                          "end.",
                          withOptions().prune(false));
  const VarDecl *I = A.var("", "i");
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, I), Interval(100, 100));
  // The second "after i :=" point is the increment inside the loop:
  // i in [1, 100] there.
  unsigned AfterInc = A.node("", "after i :=", 0, 1);
  EXPECT_EQ(A.fwdInt(AfterInc, I), Interval(1, 100));
}

TEST(ForwardAnalysisTest, BranchJoin) {
  auto A = analyzeProgram("program p; var i, j : integer;\n"
                          "begin\n"
                          "  read(i);\n"
                          "  if i < 0 then j := 0 else j := 1\n"
                          "end.",
                          withOptions().prune(false));
  const VarDecl *J = A.var("", "j");
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, J), Interval(0, 1));
}

TEST(ForwardAnalysisTest, FunctionResultFlows) {
  auto A = analyzeProgram("program p; var x : integer;\n"
                          "function f(n : integer) : integer;\n"
                          "begin f := n + 1 end;\n"
                          "begin x := f(41) end.",
                          withOptions().prune(false));
  const VarDecl *X = A.var("", "x");
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, X), Interval(42, 42));
}

TEST(ForwardAnalysisTest, GlobalUpdatedThroughProcedure) {
  auto A = analyzeProgram("program p; var g : integer;\n"
                          "procedure bump;\n"
                          "begin g := g + 1 end;\n"
                          "begin g := 0; bump; bump end.",
                          withOptions().prune(false));
  const VarDecl *G = A.var("", "g");
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, G), Interval(2, 2));
}

TEST(ForwardAnalysisTest, RecursionConverges) {
  auto A = analyzeProgram(paper::FactProgram);
  const VarDecl *Y = A.var("", "y");
  unsigned Exit = A.node("", "exit of fact");
  // The factorial value itself is unbounded; the analysis must simply
  // terminate with a sound (non-bottom) result.
  EXPECT_FALSE(A.fwdInt(Exit, Y).isBottom());
}

TEST(ForwardAnalysisTest, AckermannConverges) {
  auto A = analyzeProgram(paper::AckermannProgram);
  unsigned Exit = A.node("", "exit of ackermann");
  EXPECT_FALSE(A.An->forwardAt(Exit).isBottom());
}

TEST(ForwardAnalysisTest, SubrangeReadRefines) {
  auto A = analyzeProgram("program p; var n : 1..100; m : integer;\n"
                          "begin read(n); m := n end.",
                          withOptions().prune(false));
  const VarDecl *M = A.var("", "m");
  unsigned Exit = A.node("", "exit of p");
  // The subrange check after read(n) refines n, hence m.
  EXPECT_EQ(A.fwdInt(Exit, M), Interval(1, 100));
}

//===----------------------------------------------------------------------===//
// Exact aliasing via tokens (paper §5 / §6.4)
//===----------------------------------------------------------------------===//

TEST(AliasingTest, VarParamStrongUpdate) {
  auto A = analyzeProgram("program p; var g, h : integer;\n"
                          "procedure q(var x : integer);\n"
                          "begin x := 1 end;\n"
                          "begin g := 0; h := 0; q(g) end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(1, 1));
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "h")), Interval(0, 0));
}

TEST(AliasingTest, TwoFormalsSameActualAlias) {
  // q(g, g): x and y share the root g, so x := 1 makes y = 1.
  auto A = analyzeProgram("program p; var g, r : integer;\n"
                          "procedure q(var x : integer; var y : integer);\n"
                          "begin x := 1; r := y end;\n"
                          "begin g := 0; r := 0; q(g, g) end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "r")), Interval(1, 1));
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(1, 1));
}

TEST(AliasingTest, DistinctActualsDoNotAlias) {
  auto A = analyzeProgram("program p; var g, h, r : integer;\n"
                          "procedure q(var x : integer; var y : integer);\n"
                          "begin x := 1; r := y end;\n"
                          "begin g := 0; h := 5; r := 0; q(g, h) end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "r")), Interval(5, 5));
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "h")), Interval(5, 5));
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(1, 1));
}

TEST(AliasingTest, DifferentPartitionsGetDifferentInstances) {
  // The same call site cannot produce different partitions, but two call
  // sites with different aliasing must not be merged.
  auto A = analyzeProgram("program p; var g, h : integer;\n"
                          "procedure q(var x : integer; var y : integer);\n"
                          "begin x := y + 1 end;\n"
                          "begin g := 0; h := 10; q(g, g); q(g, h) end.",
                          withOptions().prune(false));
  // Instances: main, q@site1 with roots (g,g), q@site2 with roots (g,h).
  EXPECT_EQ(A.An->graph().instances().size(), 3u);
  unsigned Exit = A.node("", "exit of p");
  // q(g,g): g := g + 1 = 1; then q(g,h): g := h + 1 = 11.
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(11, 11));
}

TEST(AliasingTest, VarParamChainsResolveToRoot) {
  // r is passed by reference through two levels; the root is always g.
  auto A = analyzeProgram(
      "program p; var g : integer;\n"
      "procedure inner(var b : integer);\n"
      "begin b := b + 1 end;\n"
      "procedure outer(var a : integer);\n"
      "begin inner(a) end;\n"
      "begin g := 5; outer(g) end.",
      withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(6, 6));
}

//===----------------------------------------------------------------------===//
// Non-local jumps (paper §5)
//===----------------------------------------------------------------------===//

TEST(NonLocalGotoTest, JumpOutOfProcedure) {
  auto A = analyzeProgram("program p;\n"
                          "label 99;\n"
                          "var g : integer;\n"
                          "procedure q;\n"
                          "begin g := 5; goto 99; g := 7 end;\n"
                          "begin g := 0; q; g := 1; 99: g := g + 10 end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  // q never returns normally: 'g := 1' is dead; the label sees g = 5.
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(15, 15));
}

TEST(NonLocalGotoTest, ReRaiseThroughMiddleRoutine) {
  auto A = analyzeProgram("program p;\n"
                          "label 99;\n"
                          "var g : integer;\n"
                          "procedure inner;\n"
                          "begin g := 42; goto 99 end;\n"
                          "procedure middle;\n"
                          "begin inner; g := 0 end;\n"
                          "begin g := 1; middle; g := 2; 99: g := g + 1 end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(43, 43));
}

TEST(NonLocalGotoTest, ConditionalJumpJoins) {
  auto A = analyzeProgram("program p;\n"
                          "label 99;\n"
                          "var g, n : integer;\n"
                          "procedure q;\n"
                          "begin if n > 0 then begin g := 5; goto 99 end\n"
                          "      else g := 3 end;\n"
                          "begin read(n); g := 0; q; 99: g := g + 10 end.",
                          withOptions().prune(false));
  unsigned Exit = A.node("", "exit of p");
  // Either the jump (g = 5) or the normal return (g = 3) reaches 99.
  EXPECT_EQ(A.fwdInt(Exit, A.var("", "g")), Interval(13, 15));
}

//===----------------------------------------------------------------------===//
// Figure 1: the paper's derived necessary conditions
//===----------------------------------------------------------------------===//

TEST(Figure1Test, ForNeedsNegativeN) {
  // Accessing T[0] always fails, so the loop must not run: n < 0.
  auto A = analyzeProgram(paper::ForProgram);
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  EXPECT_TRUE(A.An->storeOps().domain().isTop(A.fwdInt(AfterRead, N)));
  EXPECT_EQ(A.envInt(AfterRead, N), Interval(INT64_MIN, -1));
}

TEST(Figure1Test, For1ToNNeedsNAtMost100) {
  // With the loop from 1 to n, the paper's condition becomes n <= 100:
  // "the program will exit when accessing T[101] unless n <= 100". The
  // eventually-analysis ("terminates without a run-time error") carries
  // the bound from the loop exit back to the read: the ascending lfp
  // keeps constraints shared by all paths, where the descending gfp
  // stalls on the disjunction at the loop test.
  auto A =
      analyzeProgram(paper::ForProgram1ToN, withOptions().terminationGoal());
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  EXPECT_EQ(A.envInt(AfterRead, N), Interval(INT64_MIN, 100));
}

TEST(Figure1Test, WhileNeedsBFalseForTermination) {
  auto A = analyzeProgram(paper::WhileProgram, withOptions().terminationGoal());
  const VarDecl *B = A.var("", "b");
  unsigned AfterRead = A.node("", "after read b");
  EXPECT_EQ(A.envBool(AfterRead, B), BoolLattice(false));
}

TEST(Figure1Test, FactNeedsNonNegativeXForTermination) {
  auto A = analyzeProgram(paper::FactProgram, withOptions().terminationGoal());
  const VarDecl *X = A.var("", "x");
  unsigned AfterRead = A.node("", "after read x");
  EXPECT_EQ(A.envInt(AfterRead, X), Interval(0, INT64_MAX));
}

TEST(Figure1Test, SelectNeedsNAtMost10ForTermination) {
  auto A =
      analyzeProgram(paper::SelectProgram, withOptions().terminationGoal());
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  EXPECT_EQ(A.envInt(AfterRead, N), Interval(INT64_MIN, 10));
}

TEST(Figure1Test, IntermittentNeedsIAtMost9) {
  // The paper's `i = 10` assertion placed after the increment: reaching
  // it requires i <= 9 right after read(i).
  auto A = analyzeProgram(paper::IntermittentProgram);
  const VarDecl *I = A.var("", "i");
  unsigned AfterRead = A.node("", "after read i");
  EXPECT_EQ(A.envInt(AfterRead, I), Interval(INT64_MIN, 9));
}

//===----------------------------------------------------------------------===//
// McCarthy (paper §6.5)
//===----------------------------------------------------------------------===//

TEST(McCarthyTest, InvariantProvesResultIs91) {
  auto A = analyzeProgram(paper::McCarthyWithInvariant,
                          withOptions().prune(false));
  const VarDecl *M = A.var("", "m");
  unsigned Exit = A.node("", "exit of mccarthy");
  EXPECT_EQ(A.envInt(Exit, M), Interval(91, 91));
}

TEST(McCarthyTest, IntermittentResult91NeedsNAtMost101) {
  std::string Source = paper::McCarthyProgram;
  size_t Pos = Source.find("writeln(m)");
  ASSERT_NE(Pos, std::string::npos);
  Source.insert(Pos, "intermittent(m = 91);\n  ");
  auto A = analyzeProgram(Source);
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  EXPECT_EQ(A.envInt(AfterRead, N), Interval(INT64_MIN, 101));
}

TEST(McCarthyTest, BuggyVariantTerminationNeedsLargeN) {
  auto A =
      analyzeProgram(paper::McCarthyBuggy, withOptions().terminationGoal());
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  Interval Cond = A.envInt(AfterRead, N);
  // Paper §6.5: the buggy generalization loops for every n <= 100; the
  // derived necessary condition for termination excludes them.
  EXPECT_GT(Cond.Lo, 100);
}

TEST(McCarthyTest, UnfoldingMatchesTokenCount) {
  auto A = analyzeProgram(paper::McCarthyProgram);
  // Main + one instance per call site: 9 nested + 1 outer call.
  EXPECT_EQ(A.An->graph().instances().size(), 11u);
}

//===----------------------------------------------------------------------===//
// Assertions interacting with the forward flow
//===----------------------------------------------------------------------===//

TEST(AssertionTest, InvariantRefinesForward) {
  auto A = analyzeProgram("program p; var i : integer;\n"
                          "begin read(i); invariant(i >= 0);\n"
                          "  i := i + 1 end.",
                          withOptions().prune(false));
  const VarDecl *I = A.var("", "i");
  unsigned Exit = A.node("", "exit of p");
  EXPECT_EQ(A.fwdInt(Exit, I), Interval(1, INT64_MAX));
}

TEST(AssertionTest, InvariantFalseMarksUnreachableRequirement) {
  // 'invariant(false)' demands the point is never reached: the backward
  // phase propagates the blame to the branch condition.
  auto A = analyzeProgram("program p; var i : integer;\n"
                          "begin\n"
                          "  read(i);\n"
                          "  if i > 10 then invariant(false)\n"
                          "end.");
  const VarDecl *I = A.var("", "i");
  unsigned AfterRead = A.node("", "after read i");
  EXPECT_EQ(A.envInt(AfterRead, I), Interval(INT64_MIN, 10));
}

TEST(AssertionTest, IntermittentUnreachableGivesBottomEnvelope) {
  // The intermittent point is unreachable: no state can ever satisfy it,
  // so the whole envelope collapses to bottom (a certain bug).
  auto A = analyzeProgram("program p; var i : integer;\n"
                          "begin\n"
                          "  i := 0;\n"
                          "  if i > 5 then intermittent(true)\n"
                          "end.");
  unsigned Entry = A.node("", "entry of p");
  EXPECT_TRUE(A.An->envelopeAt(Entry).isBottom());
}

} // namespace
