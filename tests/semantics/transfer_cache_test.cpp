//===- tests/semantics/transfer_cache_test.cpp - Memoization properties ---===//
//
// The transfer cache keys on (edge, direction, store hash) and confirms
// hits with full store equality, so its correctness rests on two
// properties checked here: semantically equal stores hash equal (or the
// cache would only lose hits — but the representation-independence of
// the hash is what makes the hit rate useful), and the cache itself
// never fabricates results across edges, directions or distinct stores.
//
//===----------------------------------------------------------------------===//

#include "semantics/Transfer.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

/// A tiny program whose declarations give us real VarDecls to build
/// stores around.
class TransferCacheTest : public ::testing::Test {
protected:
  TransferCacheTest()
      : A(analyzeProgram("program p; var x, y : integer; b : boolean;\n"
                         "begin x := 1; y := 2; b := true end.")),
        Ops(A.An->storeOps()), X(A.var("", "x")), Y(A.var("", "y")),
        B(A.var("", "b")) {}

  AnalyzedProgram A;
  const StoreOps &Ops;
  const VarDecl *X, *Y, *B;
};

TEST_F(TransferCacheTest, EqualStoresHashEqual) {
  // Same bindings, built in different orders.
  AbstractStore S1 = AbstractStore::top();
  Ops.assign(S1, X, AbsValue(Interval(1, 5)));
  Ops.assign(S1, Y, AbsValue(Interval(-3, 3)));
  AbstractStore S2 = AbstractStore::top();
  Ops.assign(S2, Y, AbsValue(Interval(-3, 3)));
  Ops.assign(S2, X, AbsValue(Interval(1, 5)));
  ASSERT_TRUE(Ops.equal(S1, S2));
  EXPECT_EQ(Ops.hash(S1), Ops.hash(S2));
}

TEST_F(TransferCacheTest, ExplicitTopEntryHashesLikeMissingEntry) {
  // Widening and joins can leave explicit entries at top; a missing key
  // means top by convention. Both representations are semantically equal
  // and must hash equal, or phase-crossing hits would be lost.
  AbstractStore S1 = AbstractStore::top();
  Ops.assign(S1, X, AbsValue(Interval(0, 10)));
  AbstractStore S2 = S1;
  S2.set(Y, AbsValue(Ops.domain().top()));
  S2.set(B, AbsValue(BoolLattice::top()));
  ASSERT_TRUE(Ops.equal(S1, S2));
  EXPECT_EQ(Ops.hash(S1), Ops.hash(S2));
}

TEST_F(TransferCacheTest, WideningThatChangesTheStoreChangesTheHash) {
  AbstractStore S = AbstractStore::top();
  Ops.assign(S, X, AbsValue(Interval(0, 5)));
  AbstractStore Next = AbstractStore::top();
  Ops.assign(Next, X, AbsValue(Interval(0, 6)));
  AbstractStore W = Ops.widen(S, Next);
  ASSERT_FALSE(Ops.equal(S, W)); // x jumped to [0, +oo)
  EXPECT_NE(Ops.hash(S), Ops.hash(W));
}

TEST_F(TransferCacheTest, NarrowingThatChangesTheStoreChangesTheHash) {
  AbstractStore W = AbstractStore::top();
  Ops.assign(W, X, AbsValue(Interval(0, INT64_MAX)));
  AbstractStore Refined = AbstractStore::top();
  Ops.assign(Refined, X, AbsValue(Interval(0, 100)));
  AbstractStore N = Ops.narrow(W, Refined);
  ASSERT_FALSE(Ops.equal(W, N));
  EXPECT_NE(Ops.hash(W), Ops.hash(N));
}

TEST_F(TransferCacheTest, BottomHashIsCanonical) {
  AbstractStore B1 = AbstractStore::bottom();
  AbstractStore B2 = AbstractStore::top();
  Ops.assign(B2, X, AbsValue(Interval::bottom())); // assign canonicalizes
  ASSERT_TRUE(Ops.equal(B1, B2));
  EXPECT_EQ(Ops.hash(B1), Ops.hash(B2));
  EXPECT_NE(Ops.hash(B1), Ops.hash(AbstractStore::top()));
}

//===----------------------------------------------------------------------===//
// Direct cache behavior, driven through a Nop transfer (identity).
//===----------------------------------------------------------------------===//

TEST_F(TransferCacheTest, HitsAndMissesAreKeyedOnEdgeDirectionAndStore) {
  ExprSemantics Exprs(Ops);
  Transfer Xfer(Ops, Exprs, *A.Cfg);
  TransferCache Cache(Ops);
  FrameMap F;
  Action Nop = Action::nop();

  AbstractStore S = AbstractStore::top();
  Ops.assign(S, X, AbsValue(Interval(2, 9)));

  // First evaluation computes, second reuses.
  AbstractStore R1 = *Cache.fwd(Xfer, /*EdgeId=*/0, Nop, S, F);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 0u);
  AbstractStore R2 = *Cache.fwd(Xfer, 0, Nop, S, F);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_TRUE(Ops.equal(R1, R2));

  // A semantically equal store with a different representation hits too.
  AbstractStore SWithTop = S;
  SWithTop.set(Y, AbsValue(Ops.domain().top()));
  Cache.fwd(Xfer, 0, Nop, SWithTop, F);
  EXPECT_EQ(Cache.hits(), 2u);

  // Another edge, or the backward direction, is a separate key.
  Cache.fwd(Xfer, 1, Nop, S, F);
  EXPECT_EQ(Cache.misses(), 2u);
  Cache.bwd(Xfer, 0, Nop, S, F);
  EXPECT_EQ(Cache.misses(), 3u);

  // Another store on the same edge is a miss as well.
  AbstractStore T = AbstractStore::top();
  Ops.assign(T, X, AbsValue(Interval(2, 10)));
  Cache.fwd(Xfer, 0, Nop, T, F);
  EXPECT_EQ(Cache.misses(), 4u);
  EXPECT_EQ(Cache.size(), 4u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
  Cache.fwd(Xfer, 0, Nop, S, F);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST_F(TransferCacheTest, EntryCapStopsInsertionNotCorrectness) {
  ExprSemantics Exprs(Ops);
  Transfer Xfer(Ops, Exprs, *A.Cfg);
  // A tiny cache: at most one entry per shard.
  TransferCache Cache(Ops, /*MaxEntries=*/0);
  FrameMap F;
  Action Nop = Action::nop();
  for (int I = 0; I < 500; ++I) {
    AbstractStore S = AbstractStore::top();
    Ops.assign(S, X, AbsValue(Interval(I, I)));
    AbstractStore R = *Cache.fwd(Xfer, 0, Nop, S, F);
    EXPECT_TRUE(Ops.equal(R, S)); // Nop is the identity
  }
  // 64 shards x 1 entry: the cache stayed bounded.
  EXPECT_LE(Cache.size(), 64u);
}

} // namespace
