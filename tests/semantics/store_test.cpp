//===- tests/semantics/store_test.cpp - Abstract store unit tests ---------===//

#include "semantics/AbstractStore.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

/// Fixture with a few typed variables to populate stores.
class StoreTest : public ::testing::Test {
protected:
  StoreTest() : Ops(D) {
    I = Ctx.create<VarDecl>(SourceLoc(), "i", Ctx.integerType(),
                            VarKind::Local);
    J = Ctx.create<VarDecl>(SourceLoc(), "j", Ctx.integerType(),
                            VarKind::Local);
    B = Ctx.create<VarDecl>(SourceLoc(), "b", Ctx.booleanType(),
                            VarKind::Local);
    N = Ctx.create<VarDecl>(SourceLoc(), "n", Ctx.getSubrangeType(1, 100),
                            VarKind::Local);
    T = Ctx.create<VarDecl>(SourceLoc(), "t",
                            Ctx.getArrayType(1, 10, Ctx.integerType()),
                            VarKind::Local);
  }

  AstContext Ctx;
  IntervalDomain D;
  StoreOps Ops;
  VarDecl *I, *J, *B, *N, *T;
};

TEST_F(StoreTest, TopAndBottomBasics) {
  AbstractStore Top = AbstractStore::top();
  EXPECT_TRUE(Top.isTop());
  EXPECT_FALSE(Top.isBottom());
  AbstractStore Bot = AbstractStore::bottom();
  EXPECT_TRUE(Bot.isBottom());
  EXPECT_TRUE(Ops.leq(Bot, Top));
  EXPECT_FALSE(Ops.leq(Top, Bot));
  // Missing keys read as top of the right kind.
  EXPECT_TRUE(D.isTop(Ops.get(Top, I).asInt()));
  EXPECT_TRUE(Ops.get(Top, B).asBool().isTop());
  // Bottom store yields bottom values.
  EXPECT_TRUE(Ops.get(Bot, I).isBottom());
  EXPECT_TRUE(Ops.get(Bot, B).isBottom());
}

TEST_F(StoreTest, TypeRange) {
  EXPECT_EQ(Ops.typeRange(N), Interval(1, 100));
  EXPECT_TRUE(D.isTop(Ops.typeRange(I)));
  // Array element range: the element type's range.
  EXPECT_TRUE(D.isTop(Ops.typeRange(T)));
}

TEST_F(StoreTest, AssignAndRefine) {
  AbstractStore S;
  Ops.assign(S, I, AbsValue(Interval(1, 10)));
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(1, 10));
  // Refining meets.
  Ops.refine(S, I, AbsValue(Interval(5, 20)));
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(5, 10));
  // Refining to empty collapses the whole store.
  Ops.refine(S, I, AbsValue(Interval(50, 60)));
  EXPECT_TRUE(S.isBottom());
}

TEST_F(StoreTest, AssignTopErasesEntry) {
  AbstractStore S;
  Ops.assign(S, I, AbsValue(Interval(1, 10)));
  Ops.assign(S, I, AbsValue(D.top()));
  EXPECT_FALSE(S.hasEntry(I));
  EXPECT_TRUE(S.isTop());
}

TEST_F(StoreTest, AssignBottomCollapses) {
  AbstractStore S;
  Ops.assign(S, I, AbsValue(Interval::bottom()));
  EXPECT_TRUE(S.isBottom());
}

TEST_F(StoreTest, LeqSemantics) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(2, 5)));
  Ops.assign(C, I, AbsValue(Interval(0, 10)));
  EXPECT_TRUE(Ops.leq(A, C));
  EXPECT_FALSE(Ops.leq(C, A));
  // An extra constraint makes a store lower.
  Ops.assign(A, B, AbsValue(BoolLattice(true)));
  EXPECT_TRUE(Ops.leq(A, C));
  AbstractStore JustBool;
  Ops.assign(JustBool, B, AbsValue(BoolLattice(true)));
  EXPECT_FALSE(Ops.leq(C, JustBool));
  EXPECT_TRUE(Ops.leq(A, JustBool));
}

TEST_F(StoreTest, JoinKeepsOnlyCommonConstraints) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(0, 5)));
  Ops.assign(A, J, AbsValue(Interval(1, 1)));
  Ops.assign(C, I, AbsValue(Interval(10, 20)));
  AbstractStore Joined = Ops.join(A, C);
  EXPECT_EQ(Ops.get(Joined, I).asInt(), Interval(0, 20));
  // J constrained only in A: the join is unconstrained.
  EXPECT_FALSE(Joined.hasEntry(J));
  // Join with bottom is identity.
  EXPECT_TRUE(Ops.equal(Ops.join(A, AbstractStore::bottom()), A));
}

TEST_F(StoreTest, MeetAccumulatesConstraints) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(0, 10)));
  Ops.assign(C, J, AbsValue(Interval(5, 5)));
  AbstractStore Met = Ops.meet(A, C);
  EXPECT_EQ(Ops.get(Met, I).asInt(), Interval(0, 10));
  EXPECT_EQ(Ops.get(Met, J).asInt(), Interval(5, 5));
  // Disjoint constraints on the same variable give bottom.
  AbstractStore E;
  Ops.assign(E, I, AbsValue(Interval(50, 60)));
  EXPECT_TRUE(Ops.meet(A, E).isBottom());
}

TEST_F(StoreTest, LatticeLawsOnSamples) {
  std::vector<AbstractStore> Samples;
  Samples.push_back(AbstractStore::top());
  Samples.push_back(AbstractStore::bottom());
  AbstractStore S1;
  Ops.assign(S1, I, AbsValue(Interval(0, 5)));
  Samples.push_back(S1);
  AbstractStore S2;
  Ops.assign(S2, I, AbsValue(Interval(3, 9)));
  Ops.assign(S2, B, AbsValue(BoolLattice(false)));
  Samples.push_back(S2);
  AbstractStore S3;
  Ops.assign(S3, J, AbsValue(Interval(-5, -1)));
  Samples.push_back(S3);

  for (const AbstractStore &X : Samples) {
    EXPECT_TRUE(Ops.equal(Ops.join(X, X), X));
    EXPECT_TRUE(Ops.equal(Ops.meet(X, X), X));
    for (const AbstractStore &Y : Samples) {
      EXPECT_TRUE(Ops.equal(Ops.join(X, Y), Ops.join(Y, X)));
      EXPECT_TRUE(Ops.equal(Ops.meet(X, Y), Ops.meet(Y, X)));
      EXPECT_TRUE(Ops.leq(X, Ops.join(X, Y)));
      EXPECT_TRUE(Ops.leq(Ops.meet(X, Y), X));
      EXPECT_EQ(Ops.leq(X, Y), Ops.equal(Ops.join(X, Y), Y));
    }
  }
}

TEST_F(StoreTest, WideningDropsUnstableBounds) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(0, 0)));
  Ops.assign(C, I, AbsValue(Interval(0, 1)));
  AbstractStore W = Ops.widen(A, C);
  EXPECT_EQ(Ops.get(W, I).asInt(), Interval(0, INT64_MAX));
  // A key that disappears entirely goes to top.
  AbstractStore NoKey;
  AbstractStore W2 = Ops.widen(A, NoKey);
  EXPECT_FALSE(W2.hasEntry(I));
}

TEST_F(StoreTest, WideningIsAnUpperBound) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(0, 5)));
  Ops.assign(A, B, AbsValue(BoolLattice(true)));
  Ops.assign(C, I, AbsValue(Interval(-3, 5)));
  Ops.assign(C, B, AbsValue(BoolLattice(false)));
  AbstractStore W = Ops.widen(A, C);
  EXPECT_TRUE(Ops.leq(A, W));
  EXPECT_TRUE(Ops.leq(C, W));
}

TEST_F(StoreTest, NarrowingRefinesOmegaBounds) {
  AbstractStore A, C;
  Ops.assign(A, I, AbsValue(Interval(0, INT64_MAX)));
  Ops.assign(C, I, AbsValue(Interval(0, 100)));
  AbstractStore N2 = Ops.narrow(A, C);
  EXPECT_EQ(Ops.get(N2, I).asInt(), Interval(0, 100));
  // Keys only in the refinement are adopted (A's entry was top).
  AbstractStore OnlyRefined;
  Ops.assign(OnlyRefined, J, AbsValue(Interval(1, 2)));
  AbstractStore N3 = Ops.narrow(AbstractStore::top(), OnlyRefined);
  EXPECT_EQ(Ops.get(N3, J).asInt(), Interval(1, 2));
}

TEST_F(StoreTest, NarrowingSoundOnDecreasingPairs) {
  AbstractStore A;
  Ops.assign(A, I, AbsValue(Interval(INT64_MIN, 50)));
  AbstractStore C;
  Ops.assign(C, I, AbsValue(Interval(0, 30)));
  ASSERT_TRUE(Ops.leq(C, A));
  AbstractStore N2 = Ops.narrow(A, C);
  EXPECT_TRUE(Ops.leq(C, N2));
  EXPECT_TRUE(Ops.leq(N2, A));
}

TEST_F(StoreTest, WideningThresholds) {
  StoreOps TOps(D);
  TOps.setWideningThresholds({0, 10, 100});
  AbstractStore A, C;
  TOps.assign(A, I, AbsValue(Interval(0, 5)));
  TOps.assign(C, I, AbsValue(Interval(0, 7)));
  AbstractStore W = TOps.widen(A, C);
  EXPECT_EQ(TOps.get(W, I).asInt(), Interval(0, 10));
}

TEST_F(StoreTest, Rendering) {
  AbstractStore S;
  EXPECT_EQ(Ops.str(S), "{ }");
  Ops.assign(S, I, AbsValue(Interval(1, 2)));
  Ops.assign(S, B, AbsValue(BoolLattice(true)));
  std::string Out = Ops.str(S);
  EXPECT_NE(Out.find("i -> [1, 2]"), std::string::npos);
  EXPECT_NE(Out.find("b -> true"), std::string::npos);
  EXPECT_EQ(Ops.str(AbstractStore::bottom()), "_|_");
}

TEST_F(StoreTest, ForgetRemovesConstraint) {
  AbstractStore S;
  Ops.assign(S, I, AbsValue(Interval(1, 2)));
  S.forget(I);
  EXPECT_TRUE(S.isTop());
}

} // namespace
