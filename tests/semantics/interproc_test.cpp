//===- tests/semantics/interproc_test.cpp - Supergraph structure tests ----===//
//
// Structural tests for the token-based call-graph unfolding of paper
// §5/§6.4: instance discovery, frames, shared keys, call links and
// channel edges, plus the copy-in/copy-out transfer functions in
// isolation.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "frontend/PaperPrograms.h"
#include "semantics/Interproc.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

struct BuiltGraph {
  FrontendResult FE;
  std::unique_ptr<ProgramCfg> Cfg;
  IntervalDomain D;
  std::unique_ptr<StoreOps> Ops;
  std::unique_ptr<ExprSemantics> Exprs;
  std::unique_ptr<Transfer> Xfer;
  std::unique_ptr<SuperGraph> G;
};

BuiltGraph buildGraph(const std::string &Source,
                      bool ContextInsensitive = false) {
  BuiltGraph B;
  B.FE = runFrontend(Source);
  EXPECT_TRUE(B.FE.SemaOk) << B.FE.Diags->str();
  CfgBuilder Builder(*B.FE.Ctx, *B.FE.Diags);
  B.Cfg = Builder.build(B.FE.Program);
  B.Ops = std::make_unique<StoreOps>(B.D);
  B.Exprs = std::make_unique<ExprSemantics>(*B.Ops);
  B.Xfer = std::make_unique<Transfer>(*B.Ops, *B.Exprs, *B.Cfg);
  B.G = std::make_unique<SuperGraph>(*B.Cfg, B.FE.Program, *B.Ops, *B.Exprs,
                                     *B.Xfer, ContextInsensitive);
  return B;
}

const VarDecl *findVar(const BuiltGraph &B, const std::string &Routine,
                       const std::string &Name) {
  for (RoutineDecl *R : B.FE.Routines) {
    if (!Routine.empty() && R->name() != Routine)
      continue;
    for (const VarDecl *V : R->ownedVars())
      if (V->name() == Name)
        return V;
  }
  return nullptr;
}

TEST(InterprocTest, MainOnlyProgram) {
  auto B = buildGraph("program p; var i : integer; begin i := 1 end.");
  EXPECT_EQ(B.G->instances().size(), 1u);
  EXPECT_TRUE(B.G->links().empty());
  EXPECT_EQ(B.G->instanceOf(B.G->mainEntry()).R, B.FE.Program);
  EXPECT_LT(B.G->mainEntry(), B.G->numNodes());
  EXPECT_LT(B.G->mainExit(), B.G->numNodes());
}

TEST(InterprocTest, OneInstancePerCallSite) {
  auto B = buildGraph("program p; var g : integer;\n"
                      "procedure q; begin g := g + 1 end;\n"
                      "begin q; q; q end.");
  // main + three instances of q (one per site).
  EXPECT_EQ(B.G->instances().size(), 4u);
  EXPECT_EQ(B.G->links().size(), 3u);
}

TEST(InterprocTest, ContextInsensitiveMergesSites) {
  auto B = buildGraph("program p; var g : integer;\n"
                      "procedure q; begin g := g + 1 end;\n"
                      "begin q; q; q end.",
                      /*ContextInsensitive=*/true);
  EXPECT_EQ(B.G->instances().size(), 2u);
  EXPECT_EQ(B.G->links().size(), 3u); // links still one per site
}

TEST(InterprocTest, TokensDistinguishAliasPartitions) {
  auto B = buildGraph(
      "program p; var g, h : integer;\n"
      "procedure q(var x : integer; var y : integer); begin x := y end;\n"
      "procedure caller(var a : integer); begin q(a, g) end;\n"
      "begin caller(g); caller(h) end.");
  // Instances: main, caller(g), caller(h), q(g,g), q(h,g): the two
  // caller instances produce *different* q tokens through root
  // resolution even though q is called from a single syntactic site.
  EXPECT_EQ(B.G->instances().size(), 5u);
  // And the q(g,g) instance has both formals redirected to g.
  const VarDecl *G = findVar(B, "", "g");
  unsigned Redirected = 0;
  for (const Instance &Inst : B.G->instances()) {
    if (Inst.R->name() != "q")
      continue;
    const VarDecl *X = findVar(B, "q", "x");
    const VarDecl *Y = findVar(B, "q", "y");
    if (Inst.Frame.resolve(X) == G && Inst.Frame.resolve(Y) == G)
      ++Redirected;
  }
  EXPECT_EQ(Redirected, 1u);
}

TEST(InterprocTest, SharedKeysContainAncestorsAndRoots) {
  auto B = buildGraph("program p; var g : integer;\n"
                      "procedure outer;\n"
                      "var u : integer;\n"
                      "  procedure inner(var w : integer);\n"
                      "  begin w := u + g end;\n"
                      "begin u := 1; inner(g) end;\n"
                      "begin outer end.");
  const Instance *InnerInst = nullptr;
  for (const Instance &Inst : B.G->instances())
    if (Inst.R->name() == "inner")
      InnerInst = &Inst;
  ASSERT_NE(InnerInst, nullptr);
  const VarDecl *G = findVar(B, "", "g");
  const VarDecl *U = findVar(B, "outer", "u");
  ASSERT_NE(G, nullptr);
  ASSERT_NE(U, nullptr);
  auto Contains = [&](const VarDecl *V) {
    for (const VarDecl *K : InnerInst->SharedKeys)
      if (K == V)
        return true;
    return false;
  };
  EXPECT_TRUE(Contains(G)) << "program global";
  EXPECT_TRUE(Contains(U)) << "enclosing local";
}

TEST(InterprocTest, CopyInSemantics) {
  auto B = buildGraph("program p; var g : integer;\n"
                      "procedure q(a : integer; var r : integer);\n"
                      "begin r := a end;\n"
                      "begin g := 7; q(g + 1, g) end.");
  ASSERT_EQ(B.G->links().size(), 1u);
  const CallLink &L = B.G->links()[0];
  const VarDecl *G = findVar(B, "", "g");
  const VarDecl *A = findVar(B, "q", "a");

  AbstractStore AtP;
  B.Ops->assign(AtP, G, AbsValue(Interval(7, 7)));
  AbstractStore Entry = B.G->copyIn(L, AtP);
  EXPECT_EQ(B.Ops->get(Entry, A).asInt(), Interval(8, 8));
  EXPECT_EQ(B.Ops->get(Entry, G).asInt(), Interval(7, 7));

  // Copy-out writes shared keys back and the result into the temp.
  AbstractStore AtExit = Entry;
  B.Ops->assign(AtExit, G, AbsValue(Interval(8, 8)));
  AbstractStore After = B.G->copyOut(L, AtExit, AtP);
  EXPECT_EQ(B.Ops->get(After, G).asInt(), Interval(8, 8));
}

TEST(InterprocTest, BackwardCopyInRefinesArguments) {
  auto B = buildGraph("program p; var g : integer;\n"
                      "procedure q(a : integer); begin g := a end;\n"
                      "begin read(g); q(g + 1) end.");
  ASSERT_EQ(B.G->links().size(), 1u);
  const CallLink &L = B.G->links()[0];
  const VarDecl *A = findVar(B, "q", "a");
  const VarDecl *G = findVar(B, "", "g");

  AbstractStore AtEntry;
  B.Ops->assign(AtEntry, A, AbsValue(Interval(1, 100)));
  AbstractStore AtP = B.G->bwdCopyIn(L, AtEntry);
  // a = g + 1 in [1,100] => g in [0, 99] before the call.
  EXPECT_EQ(B.Ops->get(AtP, G).asInt(), Interval(0, 99));
}

TEST(InterprocTest, ChannelEdgesConnectToCallerLabels) {
  auto B = buildGraph("program p;\n"
                      "label 99;\n"
                      "var g : integer;\n"
                      "procedure q; begin goto 99 end;\n"
                      "begin q; 99: g := 0 end.");
  unsigned ChannelEdges = 0;
  for (const SuperEdge &E : B.G->edges())
    ChannelEdges += E.K == SuperEdge::Kind::ChannelOut;
  EXPECT_EQ(ChannelEdges, 1u);
}

TEST(InterprocTest, EdgeIndicesAreConsistent) {
  auto B = buildGraph(paper::McCarthyProgram);
  for (unsigned Node = 0; Node < B.G->numNodes(); ++Node) {
    for (unsigned EdgeIdx : B.G->inEdges(Node))
      EXPECT_EQ(B.G->edges()[EdgeIdx].To, Node);
    for (unsigned EdgeIdx : B.G->outEdges(Node))
      EXPECT_EQ(B.G->edges()[EdgeIdx].From, Node);
  }
  // Node <-> (instance, point) mapping is a bijection.
  for (const Instance &Inst : B.G->instances())
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
      unsigned Node = B.G->node(Inst, P);
      EXPECT_EQ(B.G->instanceOf(Node).Id, Inst.Id);
      EXPECT_EQ(B.G->pointOf(Node), P);
    }
}

TEST(InterprocTest, ApproximateBytesGrowsWithUnfolding) {
  auto Small = buildGraph(paper::FactProgram);
  auto Large = buildGraph(paper::mcCarthyK(12));
  EXPECT_GT(Large.G->approximateBytes(), Small.G->approximateBytes());
}

} // namespace
