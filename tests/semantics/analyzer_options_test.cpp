//===- tests/semantics/analyzer_options_test.cpp - Option matrix tests ----===//
//
// The Analyzer's configuration surface: iteration strategies must agree,
// narrowing passes control widening overshoot, Harrison/forward-only/
// context-insensitive modes behave as specified, and thresholds plug in.
//
//===----------------------------------------------------------------------===//

#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

TEST(AnalyzerOptionsTest, StrategiesAgreeOnObservableResults) {
  // The two chaotic iteration strategies take different narrowing paths
  // (per-node values can be incomparable), but the headline results —
  // the envelope at the program exit and the derived loop bounds — must
  // coincide on the paper programs.
  struct Probe {
    const char *Source;
    const char *Point;
    const char *Var;
  } Probes[] = {
      {paper::IntermittentProgramPlain, "exit of intermit", "i"},
      {paper::FactProgram, "after read x", "x"},
      {paper::McCarthyProgram, "exit of mccarthy", "m"},
      {paper::BinarySearchProgram, "exit of binarysearch", "n"},
  };
  for (const Probe &P : Probes) {
    auto A1 = analyzeProgram(P.Source, withOptions());
    auto A2 = analyzeProgram(
        P.Source, withOptions().strategy(IterationStrategy::Worklist));
    const VarDecl *V1 = A1.var("", P.Var);
    const VarDecl *V2 = A2.var("", P.Var);
    EXPECT_EQ(A1.envInt(A1.node("", P.Point), V1),
              A2.envInt(A2.node("", P.Point), V2))
        << P.Point << " / " << P.Var;
  }
}

TEST(AnalyzerOptionsTest, NoNarrowingOvershoots) {
  const char *Source = "program p; var i : integer;\n"
                       "begin i := 0; while i < 100 do i := i + 1 end.";
  // i is dead at the exit: query unpruned (see analyzer_test.cpp).
  auto A =
      analyzeProgram(Source, withOptions().narrowingPasses(0).prune(false));
  const VarDecl *I = A.var("", "i");
  // Without narrowing the exit keeps the widened upper bound.
  EXPECT_EQ(A.fwdInt(A.node("", "exit of p"), I),
            Interval(100, INT64_MAX));
  auto B = analyzeProgram(Source, withOptions().prune(false));
  EXPECT_EQ(B.fwdInt(B.node("", "exit of p"), B.var("", "i")),
            Interval(100, 100));
}

TEST(AnalyzerOptionsTest, ForwardOnlySkipsBackwardPhases) {
  auto A = analyzeProgram(paper::ForProgram, withOptions().backward(false));
  // The envelope equals the (refined) forward result: no n < 0 anywhere.
  const VarDecl *N = A.var("", "n");
  unsigned AfterRead = A.node("", "after read n");
  EXPECT_TRUE(A.An->storeOps().domain().isTop(A.envInt(AfterRead, N)));
  for (const auto &[Name, Stores] : A.An->phaseSnapshots()) {
    (void)Stores;
    EXPECT_NE(Name, "always");
    EXPECT_NE(Name, "eventually");
  }
}

TEST(AnalyzerOptionsTest, HarrisonGfpKeepsGarbage) {
  // The forward *greatest* fixpoint has no reachability meaning: the
  // paper's "no semantic justification". On a simple loop it fails to
  // bound the counter at the head from below the machine bounds.
  const char *Source = "program p; var i : integer;\n"
                       "begin i := 0; while i < 100 do i := i + 1 end.";
  auto A = analyzeProgram(Source, withOptions().harrisonGfp());
  auto B = analyzeProgram(Source, withOptions());
  const StoreOps &Ops = B.An->storeOps();
  unsigned Tighter = 0, Looser = 0;
  for (unsigned Node = 0; Node < B.An->graph().numNodes(); ++Node) {
    bool DefaultTighter = Ops.leq(B.An->forwardAt(Node), A.An->forwardAt(Node));
    bool HarrisonTighter =
        Ops.leq(A.An->forwardAt(Node), B.An->forwardAt(Node));
    Tighter += DefaultTighter && !HarrisonTighter;
    Looser += HarrisonTighter && !DefaultTighter;
  }
  // Harrison's gfp is *unsoundly* tight in places (bottom where code is
  // reachable) and uselessly loose in others; it must differ from the
  // lfp-based analysis.
  EXPECT_GT(Tighter + Looser, 0u);
}

TEST(AnalyzerOptionsTest, ContextInsensitiveStillSound) {
  auto A = analyzeProgram(paper::McCarthyProgram,
                          withOptions().contextInsensitive());
  // mc's result for n <= 100 is 91; the merged analysis must still cover
  // every concrete result (soundness), i.e. at least [81, +oo) wide.
  const VarDecl *M = A.var("", "m");
  Interval Fwd = A.fwdInt(A.node("", "exit of mccarthy"), M);
  EXPECT_TRUE(Fwd.contains(91));
  EXPECT_TRUE(Fwd.contains(140)); // mc(150)
}

TEST(AnalyzerOptionsTest, ThresholdsPreserveResults) {
  auto A = analyzeProgram(paper::IntermittentProgramPlain,
                          withOptions().wideningThresholds({0, 10, 100, 101}).prune(
                              false));
  const VarDecl *I = A.var("", "i");
  EXPECT_EQ(A.fwdInt(A.node("", "exit of intermit"), I),
            Interval(100, INT64_MAX));
  // (exit is [100, +oo) here because i's start is read, not 0.)
}

TEST(AnalyzerOptionsTest, ExtraBackwardRoundsRefineMonotonically) {
  for (unsigned Rounds : {1u, 2u, 3u}) {
    auto A = analyzeProgram(
        paper::SelectProgram,
        withOptions().backwardRounds(Rounds).terminationGoal());
    const VarDecl *N = A.var("", "n");
    // The derived condition never degrades with more rounds.
    EXPECT_EQ(A.envInt(A.node("", "after read n"), N),
              Interval(INT64_MIN, 10))
        << "rounds=" << Rounds;
  }
}

TEST(AnalyzerOptionsTest, PhaseSnapshotsMatchSchedule) {
  auto A = analyzeProgram(
      paper::FactProgram, withOptions().backwardRounds(2).terminationGoal());
  // forward, then 2 x (always, eventually, forward).
  std::vector<std::string> Names;
  for (const auto &[Name, Stores] : A.An->phaseSnapshots()) {
    (void)Stores;
    Names.push_back(Name);
  }
  ASSERT_EQ(Names.size(), 7u);
  EXPECT_EQ(Names[0], "forward");
  EXPECT_EQ(Names[1], "always");
  EXPECT_EQ(Names[2], "eventually");
  EXPECT_EQ(Names[3], "forward");
  EXPECT_EQ(Names[4], "always");
}

} // namespace
