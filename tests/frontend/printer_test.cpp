//===- tests/frontend/printer_test.cpp - Pretty printer unit tests --------===//

#include "frontend/PrettyPrinter.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

/// Parses a single-assignment program and prints the value expression.
std::string printedExpr(const std::string &ExprSource) {
  auto R = runFrontend("program p; var i, j : integer; b, c : boolean;\n"
                       "    T : array [1..10] of integer;\n"
                       "function f(n : integer) : integer;\n"
                       "begin f := n end;\n"
                       "begin i := 0; j := 0; b := true; c := true;\n"
                       "  i := " + ExprSource + " end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto &Body = R.Program->block()->Body->body();
  const auto *Assign = cast<AssignStmt>(Body.back());
  return printExpr(Assign->value());
}

TEST(PrinterTest, PrecedenceParenthesization) {
  // Parentheses appear exactly where the tree requires them.
  EXPECT_EQ(printedExpr("i + j * 2"), "i + j * 2");
  EXPECT_EQ(printedExpr("(i + j) * 2"), "(i + j) * 2");
  EXPECT_EQ(printedExpr("i - (j - 1)"), "i - (j - 1)");
  EXPECT_EQ(printedExpr("i - j - 1"), "i - j - 1");
  EXPECT_EQ(printedExpr("i div (j + 1)"), "i div (j + 1)");
  EXPECT_EQ(printedExpr("-(i + 1)"), "-(i + 1)");
  EXPECT_EQ(printedExpr("abs(i - j)"), "abs(i - j)");
  EXPECT_EQ(printedExpr("T[i + 1]"), "t[i + 1]"); // identifiers normalize
  EXPECT_EQ(printedExpr("f(i) + f(j)"), "f(i) + f(j)");
}

TEST(PrinterTest, BooleanExpressionPrinting) {
  auto R = runFrontend("program p; var b, c : boolean; i : integer;\n"
                       "begin b := c and (i < 100) or not c end.",
                       /*RunSema=*/false);
  ASSERT_FALSE(R.Diags->hasErrors());
  const auto *Assign = cast<AssignStmt>(R.Program->block()->Body->body()[0]);
  EXPECT_EQ(printExpr(Assign->value()), "c and (i < 100) or not c");
}

TEST(PrinterTest, StringEscaping) {
  auto R = runFrontend("program p; begin writeln('it''s', 1) end.",
                       /*RunSema=*/false);
  ASSERT_FALSE(R.Diags->hasErrors());
  std::string Out = printProgram(R.Program);
  EXPECT_NE(Out.find("'it''s'"), std::string::npos);
}

TEST(PrinterTest, DeclarationsRoundTrip) {
  const char *Source = "program p;\n"
                       "label 10;\n"
                       "const n = 5; yes = true;\n"
                       "type small = 1..5;\n"
                       "var x : small; T : array [1..5] of integer;\n"
                       "procedure q(a : integer; var b : integer);\n"
                       "begin b := a end;\n"
                       "begin 10: q(n, x) end.";
  auto R1 = runFrontend(Source, /*RunSema=*/false);
  ASSERT_FALSE(R1.Diags->hasErrors());
  std::string P1 = printProgram(R1.Program);
  EXPECT_NE(P1.find("label 10;"), std::string::npos);
  EXPECT_NE(P1.find("n = 5;"), std::string::npos);
  EXPECT_NE(P1.find("yes = true;"), std::string::npos);
  EXPECT_NE(P1.find("small = 1..5;"), std::string::npos);
  EXPECT_NE(P1.find("array [1..5] of integer"), std::string::npos);
  EXPECT_NE(P1.find("var b : integer"), std::string::npos);
  // Idempotence.
  auto R2 = runFrontend(P1, /*RunSema=*/false);
  ASSERT_FALSE(R2.Diags->hasErrors()) << P1;
  EXPECT_EQ(printProgram(R2.Program), P1);
}

TEST(PrinterTest, ControlFlowRoundTrip) {
  const char *Source =
      "program p; var i, x : integer;\n"
      "begin\n"
      "  repeat i := i + 1 until i > 3;\n"
      "  case i of 1: x := 1; 2, 3: x := 2 else x := 0 end;\n"
      "  for i := 10 downto 1 do x := x - 1;\n"
      "  if x = 0 then x := 1 else x := 2;\n"
      "  invariant(x >= 1);\n"
      "  intermittent(x = 2)\n"
      "end.";
  auto R1 = runFrontend(Source, /*RunSema=*/false);
  ASSERT_FALSE(R1.Diags->hasErrors());
  std::string P1 = printProgram(R1.Program);
  auto R2 = runFrontend(P1, /*RunSema=*/false);
  ASSERT_FALSE(R2.Diags->hasErrors()) << P1;
  EXPECT_EQ(printProgram(R2.Program), P1);
  EXPECT_NE(P1.find("downto"), std::string::npos);
  EXPECT_NE(P1.find("invariant(x >= 1)"), std::string::npos);
  EXPECT_NE(P1.find("intermittent(x = 2)"), std::string::npos);
}

} // namespace
