//===- tests/frontend/robustness_test.cpp - Frontend failure injection ----===//
//
// The frontend must never crash, hang, or emit zero diagnostics on bad
// input: random token soup, truncated programs, deeply nested
// expressions, and mutations of valid programs.
//
//===----------------------------------------------------------------------===//

#include "frontend/PaperPrograms.h"
#include "support/Rng.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

TEST(RobustnessTest, EmptyAndTrivialInputs) {
  for (const char *Source : {"", ".", ";", "program", "program ;",
                             "begin end.", "program p", "program p;",
                             "program p; begin", "program p; begin end"}) {
    auto R = runFrontend(Source, /*RunSema=*/false);
    EXPECT_TRUE(R.Diags->hasErrors() || R.Program != nullptr) << Source;
  }
}

TEST(RobustnessTest, TruncatedPrograms) {
  std::string Source = paper::BinarySearchProgram;
  // Cut the program at every 20-byte step; the frontend must survive.
  for (size_t Len = 0; Len < Source.size(); Len += 20) {
    auto R = runFrontend(Source.substr(0, Len));
    // Either it errors or (for tiny prefixes that happen to parse) it
    // produces a tree; never a crash.
    (void)R;
  }
  SUCCEED();
}

TEST(RobustnessTest, RandomTokenSoup) {
  static const char *const Fragments[] = {
      "program", "begin", "end", "if", "then", "else", "while", "do",
      "repeat", "until", "for", "to", "downto", "var", "const", "type",
      "procedure", "function", "label", "goto", "read", "write", "div",
      "mod", "and", "or", "not", "array", "of", "integer", "boolean",
      "p", "q", "x", "i", "42", "0", ":=", "=", "<>", "<", "<=", ">",
      ">=", "(", ")", "[", "]", ",", ";", ":", ".", "..", "+", "-", "*",
      "invariant", "intermittent", "'str'",
  };
  Rng R(20240707);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Source;
    unsigned Len = 1 + R.below(60);
    for (unsigned I = 0; I < Len; ++I) {
      Source += Fragments[R.below(std::size(Fragments))];
      Source += ' ';
    }
    auto Result = runFrontend(Source);
    (void)Result; // must not crash or hang
  }
  SUCCEED();
}

TEST(RobustnessTest, MutatedValidPrograms) {
  Rng R(555);
  const char *Sources[] = {paper::HeapSortProgram, paper::McCarthyProgram,
                           paper::BinarySearchProgram};
  for (const char *Base : Sources) {
    std::string Source = Base;
    for (int Trial = 0; Trial < 60; ++Trial) {
      std::string Mutated = Source;
      switch (R.below(3)) {
      case 0: // delete a chunk
      {
        size_t Pos = R.below(Mutated.size());
        Mutated.erase(Pos, R.below(10) + 1);
        break;
      }
      case 1: // duplicate a chunk
      {
        size_t Pos = R.below(Mutated.size());
        size_t Len = std::min<size_t>(R.below(10) + 1,
                                      Mutated.size() - Pos);
        Mutated.insert(Pos, Mutated.substr(Pos, Len));
        break;
      }
      default: // flip a character
      {
        size_t Pos = R.below(Mutated.size());
        Mutated[Pos] = static_cast<char>('a' + R.below(26));
        break;
      }
      }
      auto Result = runFrontend(Mutated);
      (void)Result; // no crash, no hang
    }
  }
  SUCCEED();
}

TEST(RobustnessTest, DeeplyNestedExpressions) {
  // 200 nested parentheses: recursive descent must handle it (the depth
  // is modest by design; extreme inputs would need an explicit limiter).
  std::string Expr(200, '(');
  Expr += "1";
  Expr += std::string(200, ')');
  auto R = runFrontend("program p; var i : integer; begin i := " + Expr +
                       " end.");
  EXPECT_FALSE(R.Diags->hasErrors());
}

TEST(RobustnessTest, DeeplyNestedStatements) {
  std::string Source = "program p; var i : integer; begin ";
  for (int I = 0; I < 150; ++I)
    Source += "if i = 0 then begin ";
  Source += "i := 1 ";
  for (int I = 0; I < 150; ++I)
    Source += "end ";
  Source += "end.";
  auto R = runFrontend(Source);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
}

TEST(RobustnessTest, ErrorsAlwaysHaveMessages) {
  for (const char *Source :
       {"program p; begin x := 1 end.", "program p; begin i := ( end.",
        "program p; var i : froz; begin end.",
        "program p; begin goto 9 end."}) {
    auto R = runFrontend(Source);
    EXPECT_TRUE(R.Diags->hasErrors()) << Source;
    for (const Diagnostic &D : R.Diags->diagnostics())
      EXPECT_FALSE(D.Message.empty());
  }
}

TEST(RobustnessTest, LongIdentifiersAndNumbers) {
  std::string LongName(500, 'a');
  auto R = runFrontend("program p; var " + LongName +
                       " : integer; begin " + LongName + " := 1 end.");
  EXPECT_FALSE(R.Diags->hasErrors());
}

} // namespace
