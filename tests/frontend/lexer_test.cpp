//===- tests/frontend/lexer_test.cpp - Lexer unit tests -------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

std::vector<Token> lex(const std::string &Source,
                       DiagnosticsEngine *OutDiags = nullptr) {
  static DiagnosticsEngine Scratch;
  DiagnosticsEngine &Diags = OutDiags ? *OutDiags : Scratch;
  Scratch.clear();
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source))
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, PunctuationAndOperators) {
  EXPECT_EQ(kinds("+ - * ( ) [ ] , ; : . .. := = <> < <= > >="),
            (std::vector<TokenKind>{
                TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBracket,
                TokenKind::RBracket, TokenKind::Comma, TokenKind::Semicolon,
                TokenKind::Colon, TokenKind::Dot, TokenKind::DotDot,
                TokenKind::Assign, TokenKind::Equal, TokenKind::NotEqual,
                TokenKind::Less, TokenKind::LessEq, TokenKind::Greater,
                TokenKind::GreaterEq, TokenKind::EndOfFile}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  for (const char *Spelling : {"begin", "BEGIN", "Begin", "bEgIn"}) {
    auto Tokens = lex(Spelling);
    ASSERT_EQ(Tokens.size(), 2u);
    EXPECT_EQ(Tokens[0].Kind, TokenKind::KwBegin) << Spelling;
  }
}

TEST(LexerTest, IdentifiersNormalizeToLowerCase) {
  auto Tokens = lex("McCarthy MCCARTHY mccarthy");
  ASSERT_EQ(Tokens.size(), 4u);
  for (int I = 0; I < 3; ++I) {
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
    EXPECT_EQ(Tokens[I].Text, "mccarthy");
  }
}

TEST(LexerTest, AssertionKeywords) {
  EXPECT_EQ(kinds("invariant intermittent assert"),
            (std::vector<TokenKind>{TokenKind::KwInvariant,
                                    TokenKind::KwIntermittent,
                                    TokenKind::KwInvariant,
                                    TokenKind::EndOfFile}));
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lex("0 42 100 9223372036854775807");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 100);
  EXPECT_EQ(Tokens[3].IntValue, INT64_MAX);
}

TEST(LexerTest, OverflowingLiteralIsAnError) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("99999999999999999999", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, IntRangeFollowedByDotDot) {
  // "1..100" must lex as INT DOTDOT INT, not a malformed real.
  auto Tokens = lex("1..100");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::DotDot);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, BraceComments) {
  auto Tokens = lex("a { this is a comment } b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, ParenStarComments) {
  auto Tokens = lex("a (* multi\nline * ) still comment *) b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnterminatedCommentIsAnError) {
  DiagnosticsEngine Diags;
  lex("begin { never closed", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
  Diags.clear();
  lex("begin (* never closed", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StringLiterals) {
  auto Tokens = lex("'Found = ' 'it''s'");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "Found = ");
  EXPECT_EQ(Tokens[1].Text, "it's");
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  DiagnosticsEngine Diags;
  lex("'no end", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StrayCharacterIsAnError) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("a # b", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Unknown);
}

TEST(LexerTest, SourceLocations) {
  auto Tokens = lex("a\n  b := 1");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(2, 5));
  EXPECT_EQ(Tokens[3].Loc, SourceLoc(2, 8));
}

TEST(LexerTest, WholeProgramTokenCount) {
  // Smoke-check a realistic program lexes without errors.
  DiagnosticsEngine Diags;
  auto Tokens = lex("program p;\n"
                    "var i : integer;\n"
                    "begin\n"
                    "  for i := 0 to 100 do\n"
                    "    writeln('i = ', i)\n"
                    "end.\n",
                    &Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_GT(Tokens.size(), 20u);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

} // namespace
