//===- tests/frontend/sema_test.cpp - Semantic analysis unit tests --------===//

#include "frontend/PaperPrograms.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

TEST(SemaTest, ResolvesVariables) {
  auto R = parseValid("program p; var i : integer;\n"
                      "begin i := i + 1 end.");
  const auto *Assign = cast<AssignStmt>(R.Program->block()->Body->body()[0]);
  const auto *Target = cast<VarRefExpr>(Assign->target());
  ASSERT_NE(Target->varDecl(), nullptr);
  EXPECT_EQ(Target->varDecl()->name(), "i");
  EXPECT_EQ(Target->varDecl()->owner(), R.Program);
}

TEST(SemaTest, UnknownIdentifierIsAnError) {
  auto R = runFrontend("program p; begin x := 1 end.");
  EXPECT_FALSE(R.SemaOk);
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(SemaTest, ResolvesConstants) {
  auto R = parseValid("program p; const n = 100; var i : integer;\n"
                      "begin i := n end.");
  const auto *Assign = cast<AssignStmt>(R.Program->block()->Body->body()[0]);
  const auto *Value = cast<VarRefExpr>(Assign->value());
  ASSERT_NE(Value->constDecl(), nullptr);
  EXPECT_EQ(Value->constDecl()->value(), 100);
}

TEST(SemaTest, CannotAssignToConstant) {
  auto R = runFrontend("program p; const n = 1; begin n := 2 end.");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(SemaTest, FunctionResultAssignment) {
  auto R = parseValid("program p; var x : integer;\n"
                      "function f(n : integer) : integer;\n"
                      "begin f := n end;\n"
                      "begin x := f(1) end.");
  const RoutineDecl *F = R.Program->block()->Routines[0];
  ASSERT_NE(F->resultVar(), nullptr);
  const auto *Assign = cast<AssignStmt>(F->block()->Body->body()[0]);
  const auto *Target = cast<VarRefExpr>(Assign->target());
  EXPECT_EQ(Target->varDecl(), F->resultVar());
}

TEST(SemaTest, RecursionResolves) {
  auto R = parseValid(paper::FactProgram);
  EXPECT_TRUE(R.SemaOk);
  const RoutineDecl *F = R.Program->block()->Routines[0];
  const auto *If = cast<IfStmt>(F->block()->Body->body()[0]);
  const auto *ElseAssign = cast<AssignStmt>(If->elseStmt());
  const auto *Mul = cast<BinaryExpr>(ElseAssign->value());
  const auto *Call = cast<CallExpr>(Mul->rhs());
  EXPECT_EQ(Call->routine(), F);
  EXPECT_GT(Call->callSiteId(), 0u);
}

TEST(SemaTest, TypeErrorsAreReported) {
  // Boolean where integer expected.
  auto R1 = runFrontend("program p; var i : integer; b : boolean;\n"
                        "begin i := b end.");
  EXPECT_TRUE(R1.Diags->hasErrors());
  // Integer condition.
  auto R2 = runFrontend("program p; var i : integer;\n"
                        "begin if i then i := 1 end.");
  EXPECT_TRUE(R2.Diags->hasErrors());
  // 'and' on integers.
  auto R3 = runFrontend("program p; var i : integer; b : boolean;\n"
                        "begin b := i and i end.");
  EXPECT_TRUE(R3.Diags->hasErrors());
  // Ordering comparison on booleans.
  auto R4 = runFrontend("program p; var b, c : boolean;\n"
                        "begin b := b < c end.");
  EXPECT_TRUE(R4.Diags->hasErrors());
}

TEST(SemaTest, BooleanEqualityAllowed) {
  auto R = parseValid("program p; var a, b, c : boolean;\n"
                      "begin a := b = c; a := b <> c end.");
  EXPECT_TRUE(R.SemaOk);
}

TEST(SemaTest, SubrangeIsIntegerCompatible) {
  auto R = parseValid("program p; type idx = 1..10;\n"
                      "var i : idx; j : integer;\n"
                      "begin i := j; j := i + 1 end.");
  EXPECT_TRUE(R.SemaOk);
}

TEST(SemaTest, CallArgumentChecking) {
  // Wrong arity.
  auto R1 = runFrontend("program p;\n"
                        "procedure q(x : integer); begin end;\n"
                        "begin q(1, 2) end.");
  EXPECT_TRUE(R1.Diags->hasErrors());
  // Wrong type.
  auto R2 = runFrontend("program p; var b : boolean;\n"
                        "procedure q(x : integer); begin end;\n"
                        "begin q(b) end.");
  EXPECT_TRUE(R2.Diags->hasErrors());
  // Unknown routine.
  auto R3 = runFrontend("program p; begin zap(1) end.");
  EXPECT_TRUE(R3.Diags->hasErrors());
}

TEST(SemaTest, VarParamNeedsVariable) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "procedure q(var x : integer); begin x := 0 end;\n"
                       "begin q(i + 1) end.");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(SemaTest, VarParamAcceptsVariable) {
  auto R = parseValid("program p; var i : integer;\n"
                      "procedure q(var x : integer); begin x := 0 end;\n"
                      "begin q(i) end.");
  EXPECT_TRUE(R.SemaOk);
}

TEST(SemaTest, ProcedureInExpressionIsAnError) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "procedure q; begin end;\n"
                       "begin i := q() end.");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(SemaTest, Builtins) {
  auto R = parseValid("program p; var i : integer; b : boolean;\n"
                      "begin i := abs(-5); i := sqr(i); b := odd(i) end.");
  EXPECT_TRUE(R.SemaOk);
  const auto &Body = R.Program->block()->Body->body();
  const auto *Call =
      cast<CallExpr>(cast<AssignStmt>(Body[0])->value());
  EXPECT_EQ(Call->builtin(), BuiltinFn::Abs);
}

TEST(SemaTest, BuiltinArityError) {
  auto R = runFrontend("program p; var i : integer; begin i := abs(1, 2) end.");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(SemaTest, NestedScopeShadowing) {
  auto R = parseValid("program p; var x : integer;\n"
                      "procedure q;\n"
                      "var x : integer;\n"
                      "begin x := 1 end;\n"
                      "begin x := 2; q end.");
  const RoutineDecl *Q = R.Program->block()->Routines[0];
  const auto *Inner = cast<AssignStmt>(Q->block()->Body->body()[0]);
  const auto *InnerTarget = cast<VarRefExpr>(Inner->target());
  EXPECT_EQ(InnerTarget->varDecl()->owner(), Q);
  const auto *Outer = cast<AssignStmt>(R.Program->block()->Body->body()[0]);
  const auto *OuterTarget = cast<VarRefExpr>(Outer->target());
  EXPECT_EQ(OuterTarget->varDecl()->owner(), R.Program);
}

TEST(SemaTest, UplevelAccess) {
  auto R = parseValid("program p; var g : integer;\n"
                      "procedure q;\n"
                      "begin g := g + 1 end;\n"
                      "begin q end.");
  const RoutineDecl *Q = R.Program->block()->Routines[0];
  const auto *Assign = cast<AssignStmt>(Q->block()->Body->body()[0]);
  const auto *Target = cast<VarRefExpr>(Assign->target());
  EXPECT_EQ(Target->varDecl()->owner(), R.Program);
}

TEST(SemaTest, RoutineIdsAndLevels) {
  auto R = parseValid("program p;\n"
                      "procedure a;\n"
                      "  procedure b; begin end;\n"
                      "begin b end;\n"
                      "procedure c; begin end;\n"
                      "begin a; c end.");
  ASSERT_EQ(R.Routines.size(), 4u);
  EXPECT_EQ(R.Routines[0]->routineId(), 0u); // program
  EXPECT_EQ(R.Routines[0]->level(), 0u);
  EXPECT_EQ(R.Routines[1]->name(), "a");
  EXPECT_EQ(R.Routines[1]->level(), 1u);
  EXPECT_EQ(R.Routines[2]->name(), "b");
  EXPECT_EQ(R.Routines[2]->level(), 2u);
  EXPECT_EQ(R.Routines[3]->name(), "c");
  EXPECT_EQ(R.Routines[3]->level(), 1u);
}

TEST(SemaTest, OwnedVarsOrderParamsResultLocals) {
  auto R = parseValid("program p; var g : integer;\n"
                      "function f(a : integer; var b : integer) : integer;\n"
                      "var c : integer;\n"
                      "begin f := a + b + c end;\n"
                      "begin f(1, g) end.");
  const RoutineDecl *F = R.Program->block()->Routines[0];
  ASSERT_EQ(F->ownedVars().size(), 4u);
  EXPECT_EQ(F->ownedVars()[0]->name(), "a");
  EXPECT_EQ(F->ownedVars()[1]->name(), "b");
  EXPECT_EQ(F->ownedVars()[2], F->resultVar());
  EXPECT_EQ(F->ownedVars()[3]->name(), "c");
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(F->ownedVars()[I]->indexInOwner(), I);
}

TEST(SemaTest, DuplicateDeclarationsAreErrors) {
  auto R1 = runFrontend("program p; var x, x : integer; begin end.");
  EXPECT_TRUE(R1.Diags->hasErrors());
  auto R2 = runFrontend("program p;\n"
                        "procedure q; begin end;\n"
                        "procedure q; begin end;\n"
                        "begin end.");
  EXPECT_TRUE(R2.Diags->hasErrors());
}

//===----------------------------------------------------------------------===//
// Labels and goto
//===----------------------------------------------------------------------===//

TEST(SemaTest, LocalGotoResolves) {
  auto R = parseValid("program p;\n"
                      "label 10;\n"
                      "var i : integer;\n"
                      "begin\n"
                      "  10: i := i + 1;\n"
                      "  goto 10\n"
                      "end.");
  const auto &Body = R.Program->block()->Body->body();
  const auto *G = cast<GotoStmt>(Body[1]);
  ASSERT_NE(G->target(), nullptr);
  EXPECT_EQ(G->target()->label(), 10);
  EXPECT_EQ(G->targetRoutine(), R.Program);
}

TEST(SemaTest, NonLocalGotoResolves) {
  auto R = parseValid("program p;\n"
                      "label 99;\n"
                      "var i : integer;\n"
                      "procedure q;\n"
                      "begin goto 99 end;\n"
                      "begin\n"
                      "  q;\n"
                      "  99: i := 0\n"
                      "end.");
  const RoutineDecl *Q = R.Program->block()->Routines[0];
  const auto *G = cast<GotoStmt>(Q->block()->Body->body()[0]);
  ASSERT_NE(G->target(), nullptr);
  EXPECT_EQ(G->targetRoutine(), R.Program);
  EXPECT_NE(G->targetRoutine(), Q);
}

TEST(SemaTest, UndeclaredLabelIsAnError) {
  auto R1 = runFrontend("program p; var i : integer;\n"
                        "begin 10: i := 0 end.");
  EXPECT_TRUE(R1.Diags->hasErrors());
  auto R2 = runFrontend("program p; begin goto 42 end.");
  EXPECT_TRUE(R2.Diags->hasErrors());
}

TEST(SemaTest, DuplicateLabelIsAnError) {
  auto R = runFrontend("program p; label 10; var i : integer;\n"
                       "begin 10: i := 0; 10: i := 1 end.");
  EXPECT_TRUE(R.Diags->hasErrors());
}

//===----------------------------------------------------------------------===//
// Whole paper programs
//===----------------------------------------------------------------------===//

class PaperSemaTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PaperSemaTest, AnalyzesCleanly) {
  auto R = runFrontend(GetParam());
  ASSERT_NE(R.Program, nullptr);
  EXPECT_TRUE(R.SemaOk) << R.Diags->str();
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperPrograms, PaperSemaTest,
    ::testing::Values(paper::ForProgram, paper::ForProgram1ToN,
                      paper::WhileProgram, paper::FactProgram,
                      paper::SelectProgram, paper::IntermittentProgram,
                      paper::IntermittentProgramPlain, paper::McCarthyProgram,
                      paper::McCarthyWithInvariant, paper::McCarthyBuggy,
                      paper::BinarySearchProgram, paper::AckermannProgram,
                      paper::QuickSortProgram, paper::HeapSortProgram,
                      paper::BubbleSortProgram));

} // namespace
