//===- tests/frontend/parser_test.cpp - Parser unit tests -----------------===//

#include "frontend/PaperPrograms.h"
#include "frontend/PrettyPrinter.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

TEST(ParserTest, MinimalProgram) {
  auto R = runFrontend("program p; begin end.", /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_FALSE(R.Diags->hasErrors());
  EXPECT_EQ(R.Program->name(), "p");
  EXPECT_TRUE(R.Program->isProgram());
  ASSERT_NE(R.Program->block(), nullptr);
  EXPECT_TRUE(R.Program->block()->Body->body().empty());
}

TEST(ParserTest, ProgramFileParameters) {
  auto R = runFrontend("program p(input, output); begin end.",
                       /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_FALSE(R.Diags->hasErrors());
}

TEST(ParserTest, VarSectionSharedType) {
  auto R = runFrontend("program p;\n"
                       "var a, b, c : integer;\n"
                       "    d : boolean;\n"
                       "begin end.",
                       /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  const Block *B = R.Program->block();
  ASSERT_EQ(B->Vars.size(), 4u);
  EXPECT_EQ(B->Vars[0]->name(), "a");
  EXPECT_EQ(B->Vars[2]->name(), "c");
  EXPECT_TRUE(B->Vars[0]->type()->isIntegerLike());
  EXPECT_TRUE(B->Vars[3]->type()->isBoolean());
}

TEST(ParserTest, SubrangeAndArrayTypes) {
  auto R = runFrontend("program p;\n"
                       "type index = 1..100;\n"
                       "var T : array [index] of integer;\n"
                       "    U : array [0..9] of boolean;\n"
                       "    i : index;\n"
                       "begin end.",
                       /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const Block *B = R.Program->block();
  ASSERT_EQ(B->Vars.size(), 3u);
  const auto *T = dyn_cast<ArrayType>(B->Vars[0]->type());
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->indexLo(), 1);
  EXPECT_EQ(T->indexHi(), 100);
  EXPECT_TRUE(T->elementType()->isIntegerLike());
  const auto *I = dyn_cast<SubrangeType>(B->Vars[2]->type());
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->lo(), 1);
  EXPECT_EQ(I->hi(), 100);
}

TEST(ParserTest, ConstFoldingInSubrangeBounds) {
  auto R = runFrontend("program p;\n"
                       "const n = 50; m = -3;\n"
                       "type small = m..n;\n"
                       "var x : small;\n"
                       "begin end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *S = dyn_cast<SubrangeType>(R.Program->block()->Vars[0]->type());
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->lo(), -3);
  EXPECT_EQ(S->hi(), 50);
}

TEST(ParserTest, EmptySubrangeIsAnError) {
  auto R = runFrontend("program p; type bad = 10..1; begin end.",
                       /*RunSema=*/false);
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(ParserTest, RoutineDeclarations) {
  auto R = runFrontend(
      "program p;\n"
      "var g : integer;\n"
      "procedure q(x : integer; var y : integer); begin y := x end;\n"
      "function f(n : integer) : integer; begin f := n end;\n"
      "begin q(1, g) end.",
      /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const Block *B = R.Program->block();
  ASSERT_EQ(B->Routines.size(), 2u);
  const RoutineDecl *Q = B->Routines[0];
  EXPECT_EQ(Q->name(), "q");
  EXPECT_FALSE(Q->isFunction());
  ASSERT_EQ(Q->params().size(), 2u);
  EXPECT_EQ(Q->params()[0]->varKind(), VarKind::ValueParam);
  EXPECT_EQ(Q->params()[1]->varKind(), VarKind::VarParam);
  const RoutineDecl *F = B->Routines[1];
  EXPECT_TRUE(F->isFunction());
  EXPECT_TRUE(F->resultType()->isIntegerLike());
}

TEST(ParserTest, NestedRoutines) {
  auto R = runFrontend("program p;\n"
                       "procedure outer;\n"
                       "  procedure inner; begin end;\n"
                       "begin inner end;\n"
                       "begin outer end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const Block *B = R.Program->block();
  ASSERT_EQ(B->Routines.size(), 1u);
  ASSERT_EQ(B->Routines[0]->block()->Routines.size(), 1u);
  EXPECT_EQ(B->Routines[0]->block()->Routines[0]->name(), "inner");
}

TEST(ParserTest, OperatorPrecedence) {
  auto R = runFrontend("program p; var x : boolean; a, b, c : integer;\n"
                       "begin x := a + b * c < a - b div c end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *Assign =
      cast<AssignStmt>(R.Program->block()->Body->body()[0]);
  // Top node is the comparison.
  const auto *Cmp = dyn_cast<BinaryExpr>(Assign->value());
  ASSERT_NE(Cmp, nullptr);
  EXPECT_EQ(Cmp->op(), BinaryOp::Lt);
  // LHS of < is a + (b * c).
  const auto *Add = dyn_cast<BinaryExpr>(Cmp->lhs());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  const auto *Mul = dyn_cast<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(ParserTest, BooleanOperatorsParenthesized) {
  // Pascal precedence makes `b and (i < 100)` require the parentheses;
  // our grammar must parse this exactly as Figure 1 writes it.
  auto R = runFrontend("program p; var b : boolean; i : integer;\n"
                       "begin while b and (i < 100) do i := i - 1 end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *W = cast<WhileStmt>(R.Program->block()->Body->body()[0]);
  const auto *And = dyn_cast<BinaryExpr>(W->cond());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->op(), BinaryOp::And);
}

TEST(ParserTest, IfElseChain) {
  auto R = runFrontend("program p; var n, x : integer;\n"
                       "begin\n"
                       "  if n > 10 then x := 1\n"
                       "  else if n = 10 then x := 2\n"
                       "  else x := 3\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *If = cast<IfStmt>(R.Program->block()->Body->body()[0]);
  ASSERT_NE(If->elseStmt(), nullptr);
  EXPECT_TRUE(isa<IfStmt>(If->elseStmt()));
}

TEST(ParserTest, RepeatUntil) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "begin repeat i := i + 1; i := i + 2 until i > 10 end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *Rep = cast<RepeatStmt>(R.Program->block()->Body->body()[0]);
  EXPECT_EQ(Rep->body().size(), 2u);
}

TEST(ParserTest, ForUpAndDown) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "begin\n"
                       "  for i := 1 to 10 do i := i;\n"
                       "  for i := 10 downto 1 do i := i\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto &Body = R.Program->block()->Body->body();
  EXPECT_FALSE(cast<ForStmt>(Body[0])->isDownward());
  EXPECT_TRUE(cast<ForStmt>(Body[1])->isDownward());
}

TEST(ParserTest, CaseStatement) {
  auto R = runFrontend("program p; var n, x : integer;\n"
                       "begin\n"
                       "  case n of\n"
                       "    1: x := 1;\n"
                       "    2, 3: x := 2\n"
                       "  else x := 0\n"
                       "  end\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto *C = cast<CaseStmt>(R.Program->block()->Body->body()[0]);
  ASSERT_EQ(C->arms().size(), 2u);
  EXPECT_EQ(C->arms()[1].Labels, (std::vector<int64_t>{2, 3}));
  ASSERT_NE(C->elseStmt(), nullptr);
}

TEST(ParserTest, LabelsAndGoto) {
  auto R = runFrontend("program p;\n"
                       "label 10, 20;\n"
                       "var i : integer;\n"
                       "begin\n"
                       "  10: i := 0;\n"
                       "  goto 20;\n"
                       "  i := 1;\n"
                       "  20: i := 2\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const Block *B = R.Program->block();
  EXPECT_EQ(B->Labels, (std::vector<int64_t>{10, 20}));
  const auto &Body = B->Body->body();
  EXPECT_TRUE(isa<LabeledStmt>(Body[0]));
  EXPECT_TRUE(isa<GotoStmt>(Body[1]));
  EXPECT_EQ(cast<GotoStmt>(Body[1])->label(), 20);
}

TEST(ParserTest, AssertStatements) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "begin\n"
                       "  invariant(i >= 0);\n"
                       "  intermittent(i = 10);\n"
                       "  assert(i < 100)\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto &Body = R.Program->block()->Body->body();
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_TRUE(cast<AssertStmt>(Body[0])->isInvariant());
  EXPECT_TRUE(cast<AssertStmt>(Body[1])->isIntermittent());
  EXPECT_TRUE(cast<AssertStmt>(Body[2])->isInvariant());
}

TEST(ParserTest, ReadWriteStatements) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "    T : array [1..10] of integer;\n"
                       "begin\n"
                       "  read(i, T[i]);\n"
                       "  writeln('i = ', i)\n"
                       "end.",
                       /*RunSema=*/false);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
  const auto &Body = R.Program->block()->Body->body();
  EXPECT_EQ(cast<ReadStmt>(Body[0])->targets().size(), 2u);
  EXPECT_EQ(cast<WriteStmt>(Body[1])->values().size(), 2u);
}

TEST(ParserTest, MissingSemicolonRecovers) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "begin\n"
                       "  i := 1\n"
                       "  i := 2\n"
                       "end.",
                       /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(ParserTest, RealDivisionRejected) {
  auto R = runFrontend("program p; var i : integer; begin i := 4 / 2 end.",
                       /*RunSema=*/false);
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(ParserTest, ErrorRecoveryKeepsLaterStatements) {
  auto R = runFrontend("program p; var i : integer;\n"
                       "begin\n"
                       "  i := ;\n" // broken
                       "  i := 2\n" // must still be parsed
                       "end.",
                       /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_TRUE(R.Diags->hasErrors());
  EXPECT_GE(R.Program->block()->Body->body().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Paper programs and round-tripping
//===----------------------------------------------------------------------===//

class PaperProgramTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PaperProgramTest, ParsesCleanly) {
  auto R = runFrontend(GetParam(), /*RunSema=*/false);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->str();
}

TEST_P(PaperProgramTest, PrettyPrintRoundTripIsAFixpoint) {
  auto R1 = runFrontend(GetParam(), /*RunSema=*/false);
  ASSERT_NE(R1.Program, nullptr);
  std::string Printed1 = printProgram(R1.Program);
  auto R2 = runFrontend(Printed1, /*RunSema=*/false);
  ASSERT_NE(R2.Program, nullptr) << Printed1 << "\n" << R2.Diags->str();
  EXPECT_FALSE(R2.Diags->hasErrors()) << Printed1 << "\n" << R2.Diags->str();
  std::string Printed2 = printProgram(R2.Program);
  EXPECT_EQ(Printed1, Printed2);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperPrograms, PaperProgramTest,
    ::testing::Values(paper::ForProgram, paper::ForProgram1ToN,
                      paper::WhileProgram, paper::FactProgram,
                      paper::SelectProgram, paper::IntermittentProgram,
                      paper::IntermittentProgramPlain, paper::McCarthyProgram,
                      paper::McCarthyWithInvariant, paper::McCarthyBuggy,
                      paper::BinarySearchProgram, paper::AckermannProgram,
                      paper::QuickSortProgram, paper::HeapSortProgram,
                      paper::BubbleSortProgram));

TEST(ParserTest, McCarthyKGenerator) {
  for (unsigned K : {1u, 2u, 9u, 30u}) {
    auto R = runFrontend(paper::mcCarthyK(K), /*RunSema=*/false);
    ASSERT_NE(R.Program, nullptr);
    EXPECT_FALSE(R.Diags->hasErrors()) << "K=" << K << "\n" << R.Diags->str();
  }
}

} // namespace
