//===- tests/fixpoint/solver_test.cpp - Fixpoint solver tests -------------===//
//
// Exercises the generic solver on hand-built interval equation systems,
// including the paper's §6.1 example loop, for both iteration strategies
// and both fixpoint kinds.
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lattice/Interval.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

/// A small interval equation system: each node's RHS is the join over
/// incoming edges of a transfer applied to the source value, optionally
/// joined with a constant seed and met with a filter.
struct IntervalSystem {
  using Value = Interval;

  struct EdgeFn {
    unsigned From;
    int64_t AddOffset = 0;   ///< value + offset
    Interval Filter;         ///< meet with this after the offset
    EdgeFn(unsigned From, int64_t Off, Interval Filter)
        : From(From), AddOffset(Off), Filter(Filter) {}
  };

  IntervalDomain D;
  Digraph DepGraph;
  std::vector<std::vector<EdgeFn>> Inflows; // per node
  std::vector<Interval> Seeds;              // per node, joined in

  explicit IntervalSystem(unsigned N) : DepGraph(N), Inflows(N), Seeds(N) {}

  void addEdge(unsigned From, unsigned To, int64_t Off, Interval Filter) {
    Inflows[To].push_back(EdgeFn(From, Off, Filter));
    DepGraph.addEdge(From, To);
  }

  unsigned numNodes() const { return DepGraph.numNodes(); }
  const Digraph &graph() const { return DepGraph; }
  std::vector<unsigned> roots() const { return {0}; }

  Interval initialValue(unsigned, bool FromTop) const {
    return FromTop ? D.top() : D.bottom();
  }

  Interval evaluate(unsigned Node, const std::vector<Interval> &X) const {
    Interval Out = Seeds[Node];
    for (const EdgeFn &E : Inflows[Node]) {
      Interval V = X[E.From];
      if (E.AddOffset != 0)
        V = D.add(V, Interval::singleton(E.AddOffset));
      V = D.meet(V, E.Filter);
      Out = D.join(Out, V);
    }
    return Out;
  }

  bool leq(const Interval &A, const Interval &B) const { return D.leq(A, B); }
  bool equal(const Interval &A, const Interval &B) const { return A == B; }
  Interval widen(const Interval &A, const Interval &B) const {
    return D.widen(A, B);
  }
  Interval narrow(const Interval &A, const Interval &B) const {
    return D.narrow(A, B);
  }
};

/// The classic counting loop (paper §4/§6.1):
///   node 0: i := 0
///   node 1: loop head = join(node 0, node 3)
///   node 2: [i < 100](node 1)
///   node 3: [i := i + 1](node 2)
///   node 4: [i >= 100](node 1)
IntervalSystem countingLoop() {
  IntervalSystem S(5);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 0, S.D.top());
  S.addEdge(3, 1, 0, S.D.top());
  S.addEdge(1, 2, 0, S.D.make(INT64_MIN, 99));
  S.addEdge(2, 3, 1, S.D.top());
  S.addEdge(1, 4, 0, S.D.make(100, INT64_MAX));
  return S;
}

class StrategyTest : public ::testing::TestWithParam<IterationStrategy> {};

TEST_P(StrategyTest, CountingLoopOptimalAfterNarrowing) {
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Lfp;
  Opts.Strategy = GetParam();
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  // The paper's optimum: loop head [0,100], body entry [0,99],
  // after increment [1,100], exit [100,100].
  EXPECT_EQ(X[0], Interval(0, 0));
  EXPECT_EQ(X[1], Interval(0, 100));
  EXPECT_EQ(X[2], Interval(0, 99));
  EXPECT_EQ(X[3], Interval(1, 100));
  EXPECT_EQ(X[4], Interval(100, 100));
  EXPECT_GT(Solver.stats().Widenings, 0u);
  EXPECT_GT(Solver.stats().Narrowings, 0u);
}

TEST_P(StrategyTest, WithoutNarrowingTopRemains) {
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Strategy = GetParam();
  Opts.NarrowingPasses = 0;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  // Widening alone overshoots the loop head to [0, +oo] (paper §6.1).
  EXPECT_EQ(X[1], Interval(0, INT64_MAX));
  EXPECT_EQ(X[4], Interval(100, INT64_MAX));
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, StrategyTest,
                         ::testing::Values(IterationStrategy::Recursive,
                                           IterationStrategy::Worklist),
                         [](const auto &Info) {
                           return Info.param == IterationStrategy::Recursive
                                      ? "Recursive"
                                      : "Worklist";
                         });

TEST(SolverTest, StraightLinePropagation) {
  IntervalSystem S(3);
  S.Seeds[0] = Interval(5, 10);
  S.addEdge(0, 1, 3, S.D.top());
  S.addEdge(1, 2, -1, S.D.top());
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[1], Interval(8, 13));
  EXPECT_EQ(X[2], Interval(7, 12));
}

TEST(SolverTest, UnreachableNodesStayBottom) {
  IntervalSystem S(3);
  S.Seeds[0] = Interval(1, 1);
  S.addEdge(0, 1, 0, S.D.top());
  // Node 2 has no inflows and no seed.
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_TRUE(X[2].isBottom());
}

TEST(SolverTest, GfpFromTopDescends) {
  // X0 = X0 meet [0,50]; X1 = X0 + 1. Gfp: X0 = [0,50], X1 = [1,51].
  IntervalSystem S(2);
  S.addEdge(0, 0, 0, S.D.make(0, 50));
  S.addEdge(0, 1, 1, S.D.top());
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Gfp;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[0], Interval(0, 50));
  EXPECT_EQ(X[1], Interval(1, 51));
}

TEST(SolverTest, GfpDecreasingLoopTerminates) {
  // X0 = (X0 - 1) meet [0, 100]: the exact gfp is [0, 99]; narrowing
  // must terminate and produce a sound (larger or equal) result.
  IntervalSystem S(1);
  S.addEdge(0, 0, -1, S.D.make(0, 100));
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Gfp;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_TRUE(S.D.leq(S.D.make(0, 99), X[0]));
  EXPECT_TRUE(S.D.leq(X[0], S.D.make(0, 100)));
}

TEST(SolverTest, NestedLoopsConverge) {
  // Outer loop over i with an inner loop over j; checks the recursive
  // strategy stabilizes nested components.
  //   0: i := 0
  //   1: outer head = join(0, 5)
  //   2: [i < 10](1)        (enter inner, j plays no role here)
  //   3: inner head = join(2, 4)
  //   4: [i < 10](3)        (inner body keeps i)
  //   5: [i := i + 1](3)    (leave inner, increment)
  //   6: [i >= 10](1)
  IntervalSystem S(7);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 0, S.D.top());
  S.addEdge(5, 1, 0, S.D.top());
  S.addEdge(1, 2, 0, S.D.make(INT64_MIN, 9));
  S.addEdge(2, 3, 0, S.D.top());
  S.addEdge(3, 4, 0, S.D.make(INT64_MIN, 9));
  S.addEdge(4, 3, 0, S.D.top());
  S.addEdge(3, 5, 1, S.D.top());
  S.addEdge(1, 6, 0, S.D.make(10, INT64_MAX));
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[1], Interval(0, 10));
  EXPECT_EQ(X[6], Interval(10, 10));
  // The WTO must show the nesting.
  EXPECT_TRUE(Solver.wto().isHead(1));
  EXPECT_TRUE(Solver.wto().isHead(3));
  EXPECT_EQ(Solver.wto().depth(4), 2u);
}

TEST(SolverTest, FourStepConvergenceClaim) {
  // Paper §6.1: with widening and narrowing, the per-equation cost is
  // about four iterations. The counting loop has 5 equations; the total
  // step count must stay within a small constant factor of that.
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  Solver.solve();
  uint64_t Total =
      Solver.stats().AscendingSteps + Solver.stats().DescendingSteps;
  EXPECT_LE(Total, 5u * 8u) << "fixpoint took unexpectedly many steps";
}

} // namespace
