//===- tests/fixpoint/solver_test.cpp - Fixpoint solver tests -------------===//
//
// Exercises the generic solver on hand-built interval equation systems,
// including the paper's §6.1 example loop, for both iteration strategies
// and both fixpoint kinds.
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lattice/Interval.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

/// A small interval equation system: each node's RHS is the join over
/// incoming edges of a transfer applied to the source value, optionally
/// joined with a constant seed and met with a filter.
struct IntervalSystem {
  using Value = Interval;

  struct EdgeFn {
    unsigned From;
    int64_t AddOffset = 0;   ///< value + offset
    Interval Filter;         ///< meet with this after the offset
    EdgeFn(unsigned From, int64_t Off, Interval Filter)
        : From(From), AddOffset(Off), Filter(Filter) {}
  };

  IntervalDomain D;
  Digraph DepGraph;
  std::vector<std::vector<EdgeFn>> Inflows; // per node
  std::vector<Interval> Seeds;              // per node, joined in

  explicit IntervalSystem(unsigned N) : DepGraph(N), Inflows(N), Seeds(N) {}

  void addEdge(unsigned From, unsigned To, int64_t Off, Interval Filter) {
    Inflows[To].push_back(EdgeFn(From, Off, Filter));
    DepGraph.addEdge(From, To);
  }

  unsigned numNodes() const { return DepGraph.numNodes(); }
  const Digraph &graph() const { return DepGraph; }
  std::vector<unsigned> roots() const { return {0}; }

  Interval initialValue(unsigned, bool FromTop) const {
    return FromTop ? D.top() : D.bottom();
  }

  Interval evaluate(unsigned Node, const std::vector<Interval> &X) const {
    Interval Out = Seeds[Node];
    for (const EdgeFn &E : Inflows[Node]) {
      Interval V = X[E.From];
      if (E.AddOffset != 0)
        V = D.add(V, Interval::singleton(E.AddOffset));
      V = D.meet(V, E.Filter);
      Out = D.join(Out, V);
    }
    return Out;
  }

  bool leq(const Interval &A, const Interval &B) const { return D.leq(A, B); }
  bool equal(const Interval &A, const Interval &B) const { return A == B; }
  Interval widen(const Interval &A, const Interval &B) const {
    return D.widen(A, B);
  }
  Interval narrow(const Interval &A, const Interval &B) const {
    return D.narrow(A, B);
  }
};

/// The classic counting loop (paper §4/§6.1):
///   node 0: i := 0
///   node 1: loop head = join(node 0, node 3)
///   node 2: [i < 100](node 1)
///   node 3: [i := i + 1](node 2)
///   node 4: [i >= 100](node 1)
IntervalSystem countingLoop() {
  IntervalSystem S(5);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 0, S.D.top());
  S.addEdge(3, 1, 0, S.D.top());
  S.addEdge(1, 2, 0, S.D.make(INT64_MIN, 99));
  S.addEdge(2, 3, 1, S.D.top());
  S.addEdge(1, 4, 0, S.D.make(100, INT64_MAX));
  return S;
}

class StrategyTest : public ::testing::TestWithParam<IterationStrategy> {};

TEST_P(StrategyTest, CountingLoopOptimalAfterNarrowing) {
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Lfp;
  Opts.Strategy = GetParam();
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  // The paper's optimum: loop head [0,100], body entry [0,99],
  // after increment [1,100], exit [100,100].
  EXPECT_EQ(X[0], Interval(0, 0));
  EXPECT_EQ(X[1], Interval(0, 100));
  EXPECT_EQ(X[2], Interval(0, 99));
  EXPECT_EQ(X[3], Interval(1, 100));
  EXPECT_EQ(X[4], Interval(100, 100));
  EXPECT_GT(Solver.stats().Widenings, 0u);
  EXPECT_GT(Solver.stats().Narrowings, 0u);
}

TEST_P(StrategyTest, WithoutNarrowingTopRemains) {
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Strategy = GetParam();
  Opts.NarrowingPasses = 0;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  // Widening alone overshoots the loop head to [0, +oo] (paper §6.1).
  EXPECT_EQ(X[1], Interval(0, INT64_MAX));
  EXPECT_EQ(X[4], Interval(100, INT64_MAX));
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, StrategyTest,
                         ::testing::Values(IterationStrategy::Recursive,
                                           IterationStrategy::Worklist),
                         [](const auto &Info) {
                           return Info.param == IterationStrategy::Recursive
                                      ? "Recursive"
                                      : "Worklist";
                         });

TEST(SolverTest, StraightLinePropagation) {
  IntervalSystem S(3);
  S.Seeds[0] = Interval(5, 10);
  S.addEdge(0, 1, 3, S.D.top());
  S.addEdge(1, 2, -1, S.D.top());
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[1], Interval(8, 13));
  EXPECT_EQ(X[2], Interval(7, 12));
}

TEST(SolverTest, UnreachableNodesStayBottom) {
  IntervalSystem S(3);
  S.Seeds[0] = Interval(1, 1);
  S.addEdge(0, 1, 0, S.D.top());
  // Node 2 has no inflows and no seed.
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_TRUE(X[2].isBottom());
}

TEST(SolverTest, GfpFromTopDescends) {
  // X0 = X0 meet [0,50]; X1 = X0 + 1. Gfp: X0 = [0,50], X1 = [1,51].
  IntervalSystem S(2);
  S.addEdge(0, 0, 0, S.D.make(0, 50));
  S.addEdge(0, 1, 1, S.D.top());
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Gfp;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[0], Interval(0, 50));
  EXPECT_EQ(X[1], Interval(1, 51));
}

TEST(SolverTest, GfpDecreasingLoopTerminates) {
  // X0 = (X0 - 1) meet [0, 100]: the exact gfp is [0, 99]; narrowing
  // must terminate and produce a sound (larger or equal) result.
  IntervalSystem S(1);
  S.addEdge(0, 0, -1, S.D.make(0, 100));
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Gfp;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_TRUE(S.D.leq(S.D.make(0, 99), X[0]));
  EXPECT_TRUE(S.D.leq(X[0], S.D.make(0, 100)));
}

TEST(SolverTest, NestedLoopsConverge) {
  // Outer loop over i with an inner loop over j; checks the recursive
  // strategy stabilizes nested components.
  //   0: i := 0
  //   1: outer head = join(0, 5)
  //   2: [i < 10](1)        (enter inner, j plays no role here)
  //   3: inner head = join(2, 4)
  //   4: [i < 10](3)        (inner body keeps i)
  //   5: [i := i + 1](3)    (leave inner, increment)
  //   6: [i >= 10](1)
  IntervalSystem S(7);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 0, S.D.top());
  S.addEdge(5, 1, 0, S.D.top());
  S.addEdge(1, 2, 0, S.D.make(INT64_MIN, 9));
  S.addEdge(2, 3, 0, S.D.top());
  S.addEdge(3, 4, 0, S.D.make(INT64_MIN, 9));
  S.addEdge(4, 3, 0, S.D.top());
  S.addEdge(3, 5, 1, S.D.top());
  S.addEdge(1, 6, 0, S.D.make(10, INT64_MAX));
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  std::vector<Interval> X = Solver.solve();
  EXPECT_EQ(X[1], Interval(0, 10));
  EXPECT_EQ(X[6], Interval(10, 10));
  // The WTO must show the nesting.
  EXPECT_TRUE(Solver.wto().isHead(1));
  EXPECT_TRUE(Solver.wto().isHead(3));
  EXPECT_EQ(Solver.wto().depth(4), 2u);
}

/// IntervalSystem plus the optional warm-start concept method: per-node
/// dirty bits modelling "this node's seed was edited between rounds".
/// (The plain IntervalSystem lacks the method, which exercises the
/// trait-default path: absent means always unchanged.)
struct DirtyIntervalSystem : IntervalSystem {
  std::vector<uint8_t> Unchanged;
  explicit DirtyIntervalSystem(unsigned N)
      : IntervalSystem(N), Unchanged(N, 1) {}
  bool externalInputsUnchanged(unsigned Node) const {
    return Unchanged[Node];
  }
};

class WarmStartTest : public ::testing::TestWithParam<IterationStrategy> {};

TEST_P(WarmStartTest, IdenticalResolveIsFullyReplayed) {
  IntervalSystem S = countingLoop();
  WarmStartMemo<Interval> Memo;
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Strategy = GetParam();
  Opts.Memo = &Memo;

  FixpointSolver<IntervalSystem> Cold(S, Opts);
  std::vector<Interval> X0 = Cold.solve();
  EXPECT_TRUE(Memo.Valid);
  EXPECT_EQ(Cold.stats().ComponentSkips, 0u);
  uint64_t ColdSteps =
      Cold.stats().AscendingSteps + Cold.stats().DescendingSteps;

  // Nothing changed, so the warm run replays every element: zero live
  // evaluations, and the skipped-step tally accounts for exactly the
  // work the cold run performed.
  FixpointSolver<IntervalSystem> Warm(S, Opts);
  std::vector<Interval> X1 = Warm.solve();
  EXPECT_EQ(X0, X1);
  EXPECT_GT(Warm.stats().ComponentSkips, 0u);
  EXPECT_EQ(Warm.stats().AscendingSteps + Warm.stats().DescendingSteps, 0u);
  EXPECT_EQ(Warm.stats().SkippedSteps, ColdSteps);
  for (uint8_t Replayed : Warm.fullyReplayedElements())
    EXPECT_TRUE(Replayed);
}

TEST_P(WarmStartTest, DirtySeedForcesRecomputationAndStaysExact) {
  DirtyIntervalSystem S(5);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 0, S.D.top());
  S.addEdge(3, 1, 0, S.D.top());
  S.addEdge(1, 2, 0, S.D.make(INT64_MIN, 99));
  S.addEdge(2, 3, 1, S.D.top());
  S.addEdge(1, 4, 0, S.D.make(100, INT64_MAX));

  WarmStartMemo<Interval> Memo;
  FixpointSolver<DirtyIntervalSystem>::Options Opts;
  Opts.Strategy = GetParam();
  Opts.Memo = &Memo;
  FixpointSolver<DirtyIntervalSystem>(S, Opts).solve();

  // Edit the entry seed and mark node 0 dirty: the warm run must produce
  // exactly what a cold run over the edited system produces.
  S.Seeds[0] = Interval(5, 5);
  S.Unchanged[0] = 0;
  FixpointSolver<DirtyIntervalSystem> Warm(S, Opts);
  std::vector<Interval> XWarm = Warm.solve();

  FixpointSolver<DirtyIntervalSystem>::Options ColdOpts;
  ColdOpts.Strategy = GetParam();
  FixpointSolver<DirtyIntervalSystem> Cold(S, ColdOpts);
  EXPECT_EQ(XWarm, Cold.solve());
}

TEST_P(WarmStartTest, UpstreamEditInvalidatesDownstreamReplay) {
  // Two straight-line nodes feeding a loop: editing the straight-line
  // seed changes the loop's inputs, so the loop component must be
  // re-iterated, not replayed — and the result must match a cold solve.
  DirtyIntervalSystem S(4);
  S.Seeds[0] = Interval(0, 0);
  S.addEdge(0, 1, 2, S.D.top());
  S.addEdge(1, 2, 0, S.D.top());
  S.addEdge(3, 2, 0, S.D.top());
  S.addEdge(2, 3, 1, S.D.make(INT64_MIN, 50));

  WarmStartMemo<Interval> Memo;
  FixpointSolver<DirtyIntervalSystem>::Options Opts;
  Opts.Strategy = GetParam();
  Opts.Memo = &Memo;
  FixpointSolver<DirtyIntervalSystem>(S, Opts).solve();

  S.Seeds[0] = Interval(10, 10);
  S.Unchanged[0] = 0;
  FixpointSolver<DirtyIntervalSystem> Warm(S, Opts);
  std::vector<Interval> XWarm = Warm.solve();
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_FALSE(Warm.fullyReplayedElements()[Warm.wto().topElement(I)])
        << "node " << I << " sits downstream of the edit";

  FixpointSolver<DirtyIntervalSystem>::Options ColdOpts;
  ColdOpts.Strategy = GetParam();
  FixpointSolver<DirtyIntervalSystem> Cold(S, ColdOpts);
  EXPECT_EQ(XWarm, Cold.solve());
}

TEST_P(WarmStartTest, GfpReplayIsExactToo) {
  IntervalSystem S(2);
  S.addEdge(0, 0, 0, S.D.make(0, 50));
  S.addEdge(0, 1, 1, S.D.top());
  WarmStartMemo<Interval> Memo;
  FixpointSolver<IntervalSystem>::Options Opts;
  Opts.Kind = FixpointKind::Gfp;
  Opts.Strategy = GetParam();
  Opts.Memo = &Memo;
  std::vector<Interval> X0 = FixpointSolver<IntervalSystem>(S, Opts).solve();
  FixpointSolver<IntervalSystem> Warm(S, Opts);
  EXPECT_EQ(Warm.solve(), X0);
  EXPECT_GT(Warm.stats().ComponentSkips, 0u);
}

TEST(WarmStartTest, StrategyMismatchInvalidatesMemo) {
  // A memo recorded under one strategy must not seed replay under
  // another: the sweep boundaries are strategy-specific.
  IntervalSystem S = countingLoop();
  WarmStartMemo<Interval> Memo;
  FixpointSolver<IntervalSystem>::Options Rec;
  Rec.Memo = &Memo;
  std::vector<Interval> X0 = FixpointSolver<IntervalSystem>(S, Rec).solve();

  FixpointSolver<IntervalSystem>::Options Wl;
  Wl.Strategy = IterationStrategy::Worklist;
  Wl.Memo = &Memo;
  FixpointSolver<IntervalSystem> Warm(S, Wl);
  EXPECT_EQ(Warm.solve(), X0);
  EXPECT_EQ(Warm.stats().ComponentSkips, 0u);
  // The mismatched run re-records, so a second worklist run replays.
  FixpointSolver<IntervalSystem> Warm2(S, Wl);
  EXPECT_EQ(Warm2.solve(), X0);
  EXPECT_GT(Warm2.stats().ComponentSkips, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, WarmStartTest,
                         ::testing::Values(IterationStrategy::Recursive,
                                           IterationStrategy::Worklist,
                                           IterationStrategy::Parallel),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case IterationStrategy::Recursive:
                             return "Recursive";
                           case IterationStrategy::Worklist:
                             return "Worklist";
                           default:
                             return "Parallel";
                           }
                         });

TEST(SolverTest, FourStepConvergenceClaim) {
  // Paper §6.1: with widening and narrowing, the per-equation cost is
  // about four iterations. The counting loop has 5 equations; the total
  // step count must stay within a small constant factor of that.
  IntervalSystem S = countingLoop();
  FixpointSolver<IntervalSystem>::Options Opts;
  FixpointSolver<IntervalSystem> Solver(S, Opts);
  Solver.solve();
  uint64_t Total =
      Solver.stats().AscendingSteps + Solver.stats().DescendingSteps;
  EXPECT_LE(Total, 5u * 8u) << "fixpoint took unexpectedly many steps";
}

} // namespace
