//===- tests/fixpoint/parallel_solver_test.cpp - Strategy determinism -----===//
//
// The parallel iteration strategy schedules independent top-level WTO
// components concurrently, but the scheduling DAG orients every
// cross-component dependency in WTO order, so each component reads its
// inputs exactly as the serial recursive strategy would. The result is
// therefore *bit-identical* to Recursive — not merely equivalent up to
// precision — at every supergraph node, for any thread count, with the
// fixpoint counters summing to the same totals. These tests pin that
// guarantee on the paper's example programs; the random-program version
// lives in tests/semantics/endtoend_random_test.cpp.
//
// The worklist strategy takes a different narrowing path and is only
// required to agree on the observable results (the envelope at the
// probe points), which tests/semantics/analyzer_options_test.cpp covers.
//
//===----------------------------------------------------------------------===//

#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

const char *const Programs[] = {
    paper::ForProgram,       paper::ForProgram1ToN,
    paper::WhileProgram,     paper::FactProgram,
    paper::SelectProgram,    paper::IntermittentProgram,
    paper::McCarthyProgram,  paper::McCarthyBuggy,
    paper::BinarySearchProgram,
};

/// Asserts that analyzers \p A and \p B (sharing one AST) computed
/// bit-identical forward invariants and envelopes at every node.
void expectIdenticalStores(const Analyzer &A, const Analyzer &B) {
  const StoreOps &Ops = A.storeOps();
  ASSERT_EQ(A.graph().numNodes(), B.graph().numNodes());
  for (unsigned Node = 0; Node < A.graph().numNodes(); ++Node) {
    EXPECT_TRUE(Ops.equal(A.forwardAt(Node), B.forwardAt(Node)))
        << "forward invariant differs at node " << Node;
    EXPECT_TRUE(Ops.equal(A.envelopeAt(Node), B.envelopeAt(Node)))
        << "envelope differs at node " << Node;
  }
}

TEST(ParallelSolverTest, BitIdenticalToRecursiveOnPaperPrograms) {
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    auto Base = analyzeProgram(Source, withOptions().terminationGoal());
    for (unsigned Threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      auto Par = reanalyze(Base, withOptions()
                                     .terminationGoal()
                                     .strategy(IterationStrategy::Parallel)
                                     .threads(Threads));
      expectIdenticalStores(*Base.An, *Par);
      // The per-phase counters are sums over nodes, so they must also
      // agree exactly (each component merges its local tallies).
      EXPECT_EQ(Base.An->stats().Widenings, Par->stats().Widenings);
      EXPECT_EQ(Base.An->stats().Narrowings, Par->stats().Narrowings);
      EXPECT_EQ(Base.An->stats().Unions, Par->stats().Unions);
    }
  }
}

TEST(ParallelSolverTest, CacheDoesNotChangeResults) {
  // The transfer cache is purely memoizing: with it on or off, with any
  // strategy, the fixpoint is the same.
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    auto Base =
        analyzeProgram(Source, withOptions().transferCache(false));
    auto Cached = reanalyze(Base, withOptions().transferCache(true));
    expectIdenticalStores(*Base.An, *Cached);
    auto ParCached = reanalyze(Base, withOptions()
                                         .strategy(IterationStrategy::Parallel)
                                         .threads(8)
                                         .transferCache(true));
    expectIdenticalStores(*Base.An, *ParCached);
  }
}

TEST(ParallelSolverTest, CacheHitsAccumulateAcrossPhases) {
  // Later phases of the refinement chain revisit edges with stores
  // already seen by earlier phases, so a multi-phase analysis must
  // actually reuse cached transfers.
  auto A = analyzeProgram(paper::McCarthyProgram,
                          withOptions().transferCache(true));
  EXPECT_GT(A.An->stats().CacheHits, 0u);
  EXPECT_GT(A.An->stats().CacheMisses, 0u);
}

TEST(ParallelSolverTest, ParallelComponentCounterIsPopulated) {
  auto A = analyzeProgram(paper::McCarthyProgram,
                          withOptions()
                              .strategy(IterationStrategy::Parallel)
                              .threads(4));
  // Each phase schedules at least one top-level component.
  EXPECT_GT(A.An->stats().ParallelComponents, 0u);
  auto B = reanalyze(A, withOptions());
  EXPECT_EQ(B->stats().ParallelComponents, 0u);
}

/// Strategy-independence of the *findings*: the abstract debugger's
/// reported necessary conditions are derived from the invariants, so
/// they must come out word-for-word the same under every strategy.
std::vector<std::string> conditionsUnder(const char *Source,
                                         IterationStrategy S,
                                         unsigned Threads) {
  DiagnosticsEngine Diags;
  AbstractDebugger::Options Opts;
  Opts.TerminationGoal = true;
  Opts.Strategy = S;
  Opts.NumThreads = Threads;
  auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
  EXPECT_NE(Dbg, nullptr) << Diags.str();
  std::vector<std::string> Out;
  if (!Dbg)
    return Out;
  Dbg->analyze();
  for (const NecessaryCondition &C : Dbg->conditions())
    Out.push_back(C.str());
  for (const InvariantWarning &W : Dbg->invariantWarnings())
    Out.push_back(W.Message);
  return Out;
}

TEST(ParallelSolverTest, FindingsAgreeAcrossStrategies) {
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    std::vector<std::string> Recursive =
        conditionsUnder(Source, IterationStrategy::Recursive, 0);
    for (unsigned Threads : {1u, 2u, 8u})
      EXPECT_EQ(conditionsUnder(Source, IterationStrategy::Parallel, Threads),
                Recursive)
          << "threads=" << Threads;
    // The worklist strategy may narrow along a different path, but the
    // reported findings are observable results and must still agree.
    EXPECT_EQ(conditionsUnder(Source, IterationStrategy::Worklist, 0),
              Recursive);
  }
}

} // namespace
