//===- tests/fixpoint/wto_test.cpp - WTO unit and property tests ----------===//

#include "fixpoint/Wto.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace syntox;

namespace {

TEST(WtoTest, EmptyGraph) {
  Digraph G;
  Wto W(G, {});
  EXPECT_TRUE(W.elements().empty());
  EXPECT_EQ(W.str(), "");
}

TEST(WtoTest, StraightLine) {
  // 0 -> 1 -> 2 -> 3: plain topological order, no components.
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  Wto W(G, {0});
  EXPECT_EQ(W.str(), "0 1 2 3");
  EXPECT_TRUE(W.wideningPoints().empty());
  EXPECT_LT(W.position(0), W.position(3));
}

TEST(WtoTest, SimpleLoop) {
  // 0 -> 1 -> 2 -> 1, 2 -> 3: component (1 2).
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  Wto W(G, {0});
  EXPECT_EQ(W.str(), "0 (1 2) 3");
  EXPECT_TRUE(W.isHead(1));
  EXPECT_FALSE(W.isHead(2));
  EXPECT_EQ(W.depth(0), 0u);
  EXPECT_EQ(W.depth(1), 1u);
  EXPECT_EQ(W.depth(2), 1u);
  EXPECT_EQ(W.depth(3), 0u);
}

TEST(WtoTest, NestedLoops) {
  // 0 -> 1 -> 2 -> 3 -> 2 (inner), 3 -> 1 (outer), 3 -> 4.
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 2);
  G.addEdge(3, 1);
  G.addEdge(3, 4);
  Wto W(G, {0});
  EXPECT_EQ(W.str(), "0 (1 (2 3)) 4");
  EXPECT_TRUE(W.isHead(1));
  EXPECT_TRUE(W.isHead(2));
  EXPECT_EQ(W.depth(3), 2u);
  EXPECT_EQ(W.wideningPoints(), (std::vector<unsigned>{1, 2}));
}

TEST(WtoTest, SelfLoop) {
  Digraph G(2);
  G.addEdge(0, 0);
  G.addEdge(0, 1);
  Wto W(G, {0});
  EXPECT_EQ(W.str(), "(0) 1");
  EXPECT_TRUE(W.isHead(0));
}

TEST(WtoTest, TwoIndependentLoops) {
  // (1 2) then (3 4), sequential.
  Digraph G(6);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(4, 3);
  G.addEdge(4, 5);
  Wto W(G, {0});
  EXPECT_EQ(W.str(), "0 (1 2) (3 4) 5");
}

TEST(WtoTest, UnreachableVerticesAppear) {
  Digraph G(3);
  G.addEdge(0, 1);
  Wto W(G, {0});
  // Vertex 2 is unreachable but must still appear somewhere.
  std::set<unsigned> Seen;
  for (const WtoElement &E : W.elements())
    Seen.insert(E.Vertex);
  EXPECT_TRUE(Seen.count(2));
}

/// Checks the defining WTO property on random graphs: for every edge
/// u -> v with position(v) <= position(u) (a "back edge" in the weak
/// order), v must be the head of a component containing u. We verify the
/// practical consequence used by the solver: v is a widening point, so
/// every cycle is cut by a widening point.
TEST(WtoTest, EveryCycleIsCutByAWideningPoint) {
  Rng R(2024);
  for (int Trial = 0; Trial < 200; ++Trial) {
    unsigned N = 2 + R.below(15);
    Digraph G(N);
    unsigned NumEdges = R.below(3 * N);
    for (unsigned I = 0; I < NumEdges; ++I)
      G.addEdge(R.below(N), R.below(N));
    Wto W(G, {0});

    // Back edges must target widening points.
    for (unsigned U = 0; U < N; ++U)
      for (unsigned V : G.succs(U))
        if (W.position(V) <= W.position(U)) {
          EXPECT_TRUE(W.isHead(V))
              << "edge " << U << "->" << V << " in " << W.str();
        }

    // Removing widening points leaves an acyclic graph (DFS check).
    std::vector<int> Color(N, 0);
    std::vector<unsigned> Stack;
    auto IsCyclic = [&](auto &&Self, unsigned Node) -> bool {
      if (W.isHead(Node))
        return false; // cut vertex: do not traverse through
      Color[Node] = 1;
      for (unsigned Succ : G.succs(Node)) {
        if (W.isHead(Succ))
          continue;
        if (Color[Succ] == 1)
          return true;
        if (Color[Succ] == 0 && Self(Self, Succ))
          return true;
      }
      Color[Node] = 2;
      return false;
    };
    for (unsigned Node = 0; Node < N; ++Node)
      if (Color[Node] == 0 && !W.isHead(Node)) {
        EXPECT_FALSE(IsCyclic(IsCyclic, Node))
            << "cycle without widening point in " << W.str();
      }
  }
}

TEST(WtoTest, PositionsAreAPermutation) {
  Rng R(7);
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned N = 1 + R.below(20);
    Digraph G(N);
    for (unsigned I = 0; I < 2 * N; ++I)
      G.addEdge(R.below(N), R.below(N));
    Wto W(G, {0});
    std::set<unsigned> Positions;
    for (unsigned Node = 0; Node < N; ++Node)
      Positions.insert(W.position(Node));
    EXPECT_EQ(Positions.size(), N);
    EXPECT_EQ(*Positions.rbegin(), N - 1);
  }
}

} // namespace
