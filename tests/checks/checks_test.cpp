//===- tests/checks/checks_test.cpp - Check classification tests ----------===//
//
// Paper §6.5: "we have been able to show automatically that every array
// access is statically correct in particular implementations of HeapSort
// and Binary Search, and that most accesses are also correct in other
// implementations of various sorting algorithms."
//
//===----------------------------------------------------------------------===//

#include "checks/CheckAnalysis.h"
#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

CheckSummary classify(const std::string &Source) {
  auto A = analyzeProgram(Source);
  CheckAnalysis CA(*A.An);
  return CA.summary();
}

TEST(CheckAnalysisTest, BinarySearchAllSafe) {
  auto A = analyzeProgram(paper::BinarySearchProgram);
  CheckAnalysis CA(*A.An);
  EXPECT_TRUE(CA.allSafe()) << [&] {
    std::string Out;
    for (const CheckResult &R : CA.results())
      Out += R.str(A.An->storeOps().domain()) + "\n";
    return Out;
  }();
  EXPECT_GT(CA.summary().Total, 3u);
}

TEST(CheckAnalysisTest, HeapSortAllSafe) {
  auto A = analyzeProgram(paper::HeapSortProgram);
  CheckAnalysis CA(*A.An);
  EXPECT_TRUE(CA.allSafe()) << [&] {
    std::string Out;
    for (const CheckResult &R : CA.results())
      Out += R.str(A.An->storeOps().domain()) + "\n";
    return Out;
  }();
}

TEST(CheckAnalysisTest, BubbleSortAllSafe) {
  auto A = analyzeProgram(paper::BubbleSortProgram);
  CheckAnalysis CA(*A.An);
  EXPECT_TRUE(CA.allSafe());
}

TEST(CheckAnalysisTest, QuickSortMostSafe) {
  // The unbounded sentinel scans of QuickSort cannot be proved with
  // intervals ("all but one or two", §6.5).
  auto A = analyzeProgram(paper::QuickSortProgram);
  CheckAnalysis CA(*A.An);
  CheckSummary S = CA.summary();
  EXPECT_GT(S.Safe, 0u);
  EXPECT_GT(S.MayFail, 0u);
  EXPECT_GT(S.eliminationRatio(), 0.3);
}

TEST(CheckAnalysisTest, ForProgramIndexMustFail) {
  // T[i] with i starting at 0: the very first access violates [1,100].
  auto A = analyzeProgram(paper::ForProgram);
  CheckAnalysis CA(*A.An);
  ASSERT_EQ(CA.results().size(), 1u);
  const CheckResult &R = CA.results()[0];
  EXPECT_EQ(R.Info->Kind, CheckKind::ArrayBound);
  // Observed [0, 100]: fails for 0, so not safe.
  EXPECT_TRUE(R.Verdict == CheckVerdict::MayFail ||
              R.Verdict == CheckVerdict::MustFail);
}

TEST(CheckAnalysisTest, ConstantOutOfBoundsMustFail) {
  auto A = analyzeProgram("program p; var T : array [1..10] of integer;\n"
                          "begin T[0] := 1 end.");
  CheckAnalysis CA(*A.An);
  ASSERT_EQ(CA.results().size(), 1u);
  EXPECT_EQ(CA.results()[0].Verdict, CheckVerdict::MustFail);
}

TEST(CheckAnalysisTest, UnreachableCheck) {
  auto A = analyzeProgram("program p; var T : array [1..10] of integer;\n"
                          "    i : integer;\n"
                          "begin i := 1; if i > 5 then T[0] := 1 end.");
  CheckAnalysis CA(*A.An);
  ASSERT_EQ(CA.results().size(), 1u);
  EXPECT_EQ(CA.results()[0].Verdict, CheckVerdict::Unreachable);
}

TEST(CheckAnalysisTest, DivByZeroVerdicts) {
  auto Safe = classify("program p; var i : integer;\n"
                       "begin read(i); i := i div 2 end.");
  EXPECT_EQ(Safe.Safe, 1u);
  auto MayFail = classify("program p; var i, j : integer;\n"
                          "begin read(j); i := 10 div j end.");
  EXPECT_EQ(MayFail.MayFail, 1u);
  auto MustFail = classify("program p; var i : integer;\n"
                           "begin i := 10 div 0 end.");
  EXPECT_EQ(MustFail.MustFail, 1u);
}

TEST(CheckAnalysisTest, SubrangeAssignmentVerdicts) {
  auto Safe = classify("program p; var n : 1..100; i : integer;\n"
                       "begin read(i); if (i >= 1) and (i <= 100) then\n"
                       "  n := i end.");
  EXPECT_EQ(Safe.Safe + Safe.Unreachable, Safe.Total);
  auto MayFail = classify("program p; var n : 1..100; i : integer;\n"
                          "begin read(i); n := i end.");
  EXPECT_EQ(MayFail.MayFail, 1u);
}

TEST(CheckAnalysisTest, GuardedAccessIsSafe) {
  auto S = classify("program p; var T : array [1..10] of integer;\n"
                    "    i : integer;\n"
                    "begin read(i);\n"
                    "  if (i >= 1) and (i <= 10) then T[i] := 0 end.");
  EXPECT_EQ(S.Safe, 1u);
}

TEST(CheckAnalysisTest, CaseCoverage) {
  // Selector restricted to matched labels: fallthrough unreachable.
  auto Covered = classify("program p; var n, x : integer;\n"
                          "begin read(n);\n"
                          "  if (n >= 1) and (n <= 2) then\n"
                          "    case n of 1: x := 1; 2: x := 2 end\n"
                          "end.");
  EXPECT_EQ(Covered.Unreachable, Covered.Total);
  auto Open = classify("program p; var n, x : integer;\n"
                       "begin read(n); case n of 1: x := 1 end end.");
  EXPECT_EQ(Open.MustFail, 1u);
}

TEST(CheckAnalysisTest, EliminationRatio) {
  CheckSummary S;
  S.Total = 10;
  S.Safe = 6;
  S.Unreachable = 1;
  S.MayFail = 3;
  EXPECT_DOUBLE_EQ(S.eliminationRatio(), 0.7);
  CheckSummary Empty;
  EXPECT_DOUBLE_EQ(Empty.eliminationRatio(), 1.0);
}

TEST(CheckAnalysisTest, MatrixAllSafe) {
  // Paper §6.5: "every array access in programs Matrix and Shuttle of
  // Markstein et al. is statically proven correct by Syntox". The
  // flattened (i-1)*10+j indices need interval multiplication.
  auto A = analyzeProgram(paper::MatrixProgram);
  CheckAnalysis CA(*A.An);
  EXPECT_TRUE(CA.allSafe()) << [&] {
    std::string Out;
    for (const CheckResult &R : CA.results())
      if (R.Verdict == CheckVerdict::MayFail ||
          R.Verdict == CheckVerdict::MustFail)
        Out += R.str(A.An->storeOps().domain()) + "\n";
    return Out;
  }();
  EXPECT_GT(CA.summary().Total, 5u);
}

TEST(CheckAnalysisTest, ShuttleAllSafe) {
  auto A = analyzeProgram(paper::ShuttleProgram);
  CheckAnalysis CA(*A.An);
  EXPECT_TRUE(CA.allSafe()) << [&] {
    std::string Out;
    for (const CheckResult &R : CA.results())
      if (R.Verdict == CheckVerdict::MayFail ||
          R.Verdict == CheckVerdict::MustFail)
        Out += R.str(A.An->storeOps().domain()) + "\n";
    return Out;
  }();
}

} // namespace
