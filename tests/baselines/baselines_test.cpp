//===- tests/baselines/baselines_test.cpp - Baseline comparison tests -----===//
//
// Paper §6.5: the full abstract debugger must dominate the Harrison-77
// gfp analysis and the forward-only analysis in precision, and the
// context-insensitive variant must be cheaper but less precise on
// token-sensitive programs.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

struct Built {
  FrontendResult FE;
  std::unique_ptr<ProgramCfg> Cfg;
};

Built build(const std::string &Source) {
  Built Out;
  Out.FE = runFrontend(Source);
  EXPECT_TRUE(Out.FE.SemaOk) << Out.FE.Diags->str();
  CfgBuilder Builder(*Out.FE.Ctx, *Out.FE.Diags);
  Out.Cfg = Builder.build(Out.FE.Program);
  return Out;
}

BaselineOutcome run(const Built &B, BaselineKind Kind) {
  return runBaseline(Kind, *B.Cfg, B.FE.Program);
}

TEST(BaselinesTest, NamesAndOptions) {
  EXPECT_STREQ(baselineKindName(BaselineKind::HarrisonGfp), "harrison-gfp");
  EXPECT_FALSE(baselineOptions(BaselineKind::ForwardOnly).UseBackward);
  EXPECT_TRUE(baselineOptions(BaselineKind::HarrisonGfp).HarrisonGfp);
  EXPECT_TRUE(
      baselineOptions(BaselineKind::ContextInsensitive).ContextInsensitive);
}

TEST(BaselinesTest, FullDominatesHarrisonOnBinarySearch) {
  Built B = build(paper::BinarySearchProgram);
  BaselineOutcome Full = run(B, BaselineKind::FullAbstractDebugging);
  BaselineOutcome Harrison = run(B, BaselineKind::HarrisonGfp);
  // The lfp-based analysis discharges every array check; Harrison's gfp
  // of the forward system keeps unreachable garbage alive and proves
  // fewer checks.
  EXPECT_GE(Full.Checks.Safe, Harrison.Checks.Safe);
  EXPECT_GT(Full.FiniteBounds, Harrison.FiniteBounds);
}

TEST(BaselinesTest, ForwardOnlyFindsSameChecksButNoConditions) {
  // Check discharge only needs the forward analysis; the difference is
  // in the conditions (backward), visible as equal check summaries here.
  Built B = build(paper::HeapSortProgram);
  BaselineOutcome Full = run(B, BaselineKind::FullAbstractDebugging);
  BaselineOutcome Fwd = run(B, BaselineKind::ForwardOnly);
  EXPECT_EQ(Full.Checks.Safe, Fwd.Checks.Safe);
  EXPECT_EQ(Full.Checks.Total, Fwd.Checks.Total);
}

TEST(BaselinesTest, ContextInsensitiveMergesInstances) {
  Built B = build(paper::McCarthyProgram);
  BaselineOutcome Full = run(B, BaselineKind::FullAbstractDebugging);
  BaselineOutcome Merged = run(B, BaselineKind::ContextInsensitive);
  // 11 unfolded instances vs 2 (main + mc).
  EXPECT_GT(Full.ControlPoints, Merged.ControlPoints);
  EXPECT_LT(Merged.ControlPoints, Full.ControlPoints / 3);
}

TEST(BaselinesTest, ContextInsensitiveLosesPrecision) {
  // Two call sites with different constant arguments: merging them loses
  // the per-site constants.
  Built B = build("program p; var a, b : integer;\n"
                  "function id(x : integer) : integer;\n"
                  "begin id := x end;\n"
                  "begin a := id(1); b := id(100);\n"
                  "  invariant(a = 1); invariant(b = 100) end.");
  BaselineOutcome Full = run(B, BaselineKind::FullAbstractDebugging);
  BaselineOutcome Merged = run(B, BaselineKind::ContextInsensitive);
  EXPECT_GT(Full.FiniteBounds, Merged.FiniteBounds);
}

TEST(BaselinesTest, AllBaselinesRunOnQuickSort) {
  Built B = build(paper::QuickSortProgram);
  std::vector<BaselineOutcome> All = runAllBaselines(*B.Cfg, B.FE.Program);
  ASSERT_EQ(All.size(), 4u);
  for (const BaselineOutcome &O : All) {
    EXPECT_GT(O.ControlPoints, 0u);
    EXPECT_FALSE(O.str().empty());
  }
  // Full is at least as precise as the *sound* baselines on check
  // discharge (Harrison's gfp produces unsound "unreachable" verdicts —
  // the paper's "no semantic justification" criticism — so its counts
  // are not comparable; its range quality collapses instead).
  EXPECT_GE(All[0].Checks.Safe, All[1].Checks.Safe); // forward-only
  EXPECT_GE(All[0].Checks.Safe, All[3].Checks.Safe); // context-insensitive
  EXPECT_GT(All[0].FiniteBounds, All[2].FiniteBounds); // harrison
}

} // namespace
