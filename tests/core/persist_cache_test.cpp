//===- tests/core/persist_cache_test.cpp - On-disk cache differential -----===//
//
// The persistent warm-start cache (src/persist/WarmCache.*) must be
// invisible in every observable result and fail safe on every broken
// input: a rerun against a valid cache replays the whole refinement
// chain (zero live solver steps) with findings bitwise-identical to a
// cold run, and a truncated, corrupted, version-skewed or
// options-skewed cache file falls back to a cold solve with — again —
// identical findings. The fuzzed battery pins the save/load round trip
// on 200 random programs across the three iteration strategies.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"
#include "persist/WarmCache.h"
#include "support/Metrics.h"

#include "../common/AnalysisTestUtil.h"
#include "../common/RandomProgramGen.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace fs = std::filesystem;

namespace {

const char *const TwoProcProgram = R"(
program two;
var a, b : integer;

procedure p1(var x : integer);
var i : integer;
begin
  i := 0;
  while i < 50 do begin
    i := i + 1;
    x := i
  end
end;

procedure p2(var y : integer);
var j : integer;
begin
  j := 10;
  while j > 0 do begin
    j := j - 1;
    y := j
  end
end;

begin
  a := 0;
  b := 0;
  p1(a);
  p2(b);
  assert(a >= 0);
  assert(b >= 0)
end.
)";

/// A scratch cache directory, wiped on construction and destruction.
struct ScratchDir {
  fs::path Dir;
  explicit ScratchDir(const std::string &Name)
      : Dir(fs::temp_directory_path() / ("syntox_persist_test_" + Name)) {
    std::error_code EC;
    fs::remove_all(Dir, EC);
    fs::create_directories(Dir, EC);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string str() const { return Dir.string(); }
};

struct RunOutcome {
  json::Value Findings;     ///< toJson() minus stats/metrics
  uint64_t LiveSteps = 0;   ///< widening + narrowing steps actually run
  uint64_t Loaded = 0;      ///< persist.loaded counter
  uint64_t Fallback = 0;    ///< persist.fallback counter
  bool Ok = false;
};

json::Value stripCounters(const json::Value &Doc) {
  json::Value Out = json::Value::object();
  for (const auto &KV : Doc.members())
    if (KV.first != "stats" && KV.first != "metrics")
      Out.set(KV.first, KV.second);
  return Out;
}

/// One full analysis of \p Source with its own metrics registry.
/// \p CacheDir empty = plain cold run.
RunOutcome runOnce(const std::string &Source, const std::string &CacheDir,
                   AnalysisOptions Opts = withOptions().terminationGoal()) {
  MetricsRegistry Metrics;
  Opts.CacheDir = CacheDir;
  Opts.Telem.Metrics = &Metrics;
  RunOutcome O;
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Source, Diags, Opts);
  EXPECT_NE(Session, nullptr) << Diags.str();
  if (!Session)
    return O;
  AnalysisResult R = Session->run();
  O.Findings = stripCounters(R.toJson());
  for (const PhaseStats &P : R.stats().Phases)
    O.LiveSteps += P.WideningSteps + P.NarrowingSteps;
  O.Loaded = Metrics.counterValue("persist.loaded");
  O.Fallback = Metrics.counterValue("persist.fallback");
  O.Ok = true;
  return O;
}

/// Expects the cache at \p Dir (already seeded for \p Source) to be
/// rejected: the run must report a fallback, perform live work, and
/// still match \p Cold's findings.
void expectFallbackIdentical(const std::string &Source,
                             const std::string &Dir,
                             const RunOutcome &Cold, const char *What) {
  RunOutcome R = runOnce(Source, Dir);
  ASSERT_TRUE(R.Ok) << What;
  EXPECT_EQ(R.Loaded, 0u) << What << ": cache was unexpectedly accepted";
  EXPECT_EQ(R.Fallback, 1u) << What;
  EXPECT_GT(R.LiveSteps, 0u) << What;
  EXPECT_TRUE(R.Findings == Cold.Findings)
      << What << "\nfallback:\n" << R.Findings.pretty() << "\ncold:\n"
      << Cold.Findings.pretty();
}

/// The single cache file written for \p Opts under \p Dir.
fs::path cacheFile(const std::string &Dir,
                   AnalysisOptions Opts = withOptions().terminationGoal()) {
  return persist::cacheFilePath(Dir, Opts);
}

std::vector<char> readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(In), {});
}

void writeFile(const fs::path &P, const std::vector<char> &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

TEST(PersistCacheTest, UnchangedRerunReplaysWholeChain) {
  ScratchDir Dir("rerun");
  RunOutcome Cold = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Cold.Ok);
  EXPECT_EQ(Cold.Loaded, 0u);
  EXPECT_GT(Cold.LiveSteps, 0u);
  ASSERT_TRUE(fs::exists(cacheFile(Dir.str())));

  RunOutcome Warm = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Warm.Ok);
  EXPECT_EQ(Warm.Loaded, 1u);
  EXPECT_EQ(Warm.Fallback, 0u);
  EXPECT_EQ(Warm.LiveSteps, 0u)
      << "unchanged rerun must replay every component from disk";
  EXPECT_TRUE(Warm.Findings == Cold.Findings);
}

TEST(PersistCacheTest, EditedRoutineResolvesOnlyItsComponents) {
  ScratchDir Dir("edit");
  RunOutcome Seed = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Seed.Ok);

  // Same program with one constant changed inside p2: p1's components
  // keep their fingerprints and replay; p2 (and the main-body suffix
  // its result feeds) re-solves live.
  std::string Edited = TwoProcProgram;
  size_t At = Edited.find("j := 10");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 7, "j := 20");

  RunOutcome EditedCold = runOnce(Edited, "");
  RunOutcome EditedWarm = runOnce(Edited, Dir.str());
  ASSERT_TRUE(EditedCold.Ok && EditedWarm.Ok);
  EXPECT_EQ(EditedWarm.Loaded, 1u);
  EXPECT_GT(EditedWarm.LiveSteps, 0u);
  EXPECT_LT(EditedWarm.LiveSteps, EditedCold.LiveSteps)
      << "partial invalidation must beat the cold edited run";
  EXPECT_TRUE(EditedWarm.Findings == EditedCold.Findings);
}

TEST(PersistCacheTest, ReorderedIdenticalProgramKeepsFindingsIntact) {
  // The same two routines declared in the opposite order: every node
  // index shifts. Whatever the key remap salvages (all of it when the
  // reorder leaves the fingerprints alone, nothing when the enclosing
  // program's fingerprint absorbs the declaration order), the findings
  // must equal a cold run's — grafting state onto the wrong node would
  // show up here.
  std::string Reordered = TwoProcProgram;
  size_t P1 = Reordered.find("procedure p1");
  size_t P2 = Reordered.find("procedure p2");
  size_t End = Reordered.find("begin\n  a := 0;");
  ASSERT_TRUE(P1 != std::string::npos && P2 != std::string::npos &&
              End != std::string::npos);
  Reordered = Reordered.substr(0, P1) + Reordered.substr(P2, End - P2) +
              Reordered.substr(P1, P2 - P1) + Reordered.substr(End);

  ScratchDir Dir("reorder");
  RunOutcome Seed = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Seed.Ok);
  RunOutcome Warm = runOnce(Reordered, Dir.str());
  RunOutcome Cold = runOnce(Reordered, "");
  ASSERT_TRUE(Warm.Ok && Cold.Ok);
  EXPECT_EQ(Warm.Loaded + Warm.Fallback, 1u);
  EXPECT_TRUE(Warm.Findings == Cold.Findings);
}

TEST(PersistCacheTest, TruncatedCacheFallsBackCold) {
  ScratchDir Dir("trunc");
  RunOutcome Cold = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Cold.Ok);
  std::vector<char> Full = readFile(cacheFile(Dir.str()));
  ASSERT_GT(Full.size(), 64u);

  for (size_t Keep : {size_t(0), size_t(3), size_t(17), size_t(40),
                      Full.size() / 2, Full.size() - 1}) {
    SCOPED_TRACE("truncated to " + std::to_string(Keep) + " bytes");
    writeFile(cacheFile(Dir.str()),
              std::vector<char>(Full.begin(), Full.begin() + Keep));
    expectFallbackIdentical(TwoProcProgram, Dir.str(), Cold, "truncated");
    // The fallback run re-saved a fresh cache; re-truncate from the
    // original bytes each iteration to keep the cases independent.
  }
}

TEST(PersistCacheTest, CorruptedBytesFallBackCold) {
  ScratchDir Dir("corrupt");
  RunOutcome Cold = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Cold.Ok);
  std::vector<char> Full = readFile(cacheFile(Dir.str()));
  ASSERT_GT(Full.size(), 64u);

  // One flipped byte in the body breaks the checksum; in the magic or
  // version fields it breaks the header checks.
  for (size_t At : {size_t(0), size_t(5), size_t(48), Full.size() - 1}) {
    SCOPED_TRACE("flipped byte " + std::to_string(At));
    std::vector<char> Bad = Full;
    Bad[At] = static_cast<char>(Bad[At] ^ 0x5A);
    writeFile(cacheFile(Dir.str()), Bad);
    expectFallbackIdentical(TwoProcProgram, Dir.str(), Cold, "corrupted");
  }
}

TEST(PersistCacheTest, FormatVersionMismatchFallsBackCold) {
  ScratchDir Dir("version");
  RunOutcome Cold = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Cold.Ok);
  std::vector<char> Full = readFile(cacheFile(Dir.str()));
  ASSERT_GT(Full.size(), 8u);
  // Bytes 4..7 hold the little-endian format version.
  Full[4] = static_cast<char>(persist::CacheFormatVersion + 1);
  writeFile(cacheFile(Dir.str()), Full);
  expectFallbackIdentical(TwoProcProgram, Dir.str(), Cold,
                          "version mismatch");
}

TEST(PersistCacheTest, OptionsMismatchFallsBackCold) {
  // A cache saved under one configuration, copied over the file name of
  // another: the embedded options hash disagrees and the load must
  // reject it (the two configurations genuinely solve different
  // systems).
  ScratchDir Dir("opts");
  RunOutcome Seed = runOnce(TwoProcProgram, Dir.str());
  ASSERT_TRUE(Seed.Ok);

  AnalysisOptions Other = withOptions().terminationGoal();
  Other.NarrowingPasses = 3;
  fs::path OtherFile = cacheFile(Dir.str(), Other);
  ASSERT_NE(OtherFile, cacheFile(Dir.str()));
  std::error_code EC;
  fs::copy_file(cacheFile(Dir.str()), OtherFile, EC);
  ASSERT_FALSE(EC);

  MetricsRegistry Metrics;
  AnalysisOptions Opts = Other;
  Opts.CacheDir = Dir.str();
  Opts.Telem.Metrics = &Metrics;
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(TwoProcProgram, Diags, Opts);
  ASSERT_NE(Session, nullptr) << Diags.str();
  AnalysisResult R = Session->run();
  EXPECT_EQ(Metrics.counterValue("persist.loaded"), 0u);
  EXPECT_EQ(Metrics.counterValue("persist.fallback"), 1u);

  RunOutcome Cold = runOnce(TwoProcProgram, "", Other);
  EXPECT_TRUE(stripCounters(R.toJson()) == Cold.Findings);
}

TEST(PersistCacheTest, PaperProgramsRoundTripAllStrategies) {
  const char *const Programs[] = {
      paper::ForProgram,          paper::WhileProgram,
      paper::FactProgram,         paper::SelectProgram,
      paper::IntermittentProgram, paper::McCarthyProgram,
      paper::McCarthyBuggy,       paper::BinarySearchProgram,
  };
  unsigned Idx = 0;
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    for (IterationStrategy S :
         {IterationStrategy::Recursive, IterationStrategy::Worklist,
          IterationStrategy::Parallel}) {
      ScratchDir Dir("paper" + std::to_string(Idx++));
      AnalysisOptions Opts =
          withOptions().terminationGoal().strategy(S).threads(
              S == IterationStrategy::Parallel ? 4 : 0);
      RunOutcome Cold = runOnce(Source, Dir.str(), Opts);
      RunOutcome Warm = runOnce(Source, Dir.str(), Opts);
      ASSERT_TRUE(Cold.Ok && Warm.Ok);
      EXPECT_EQ(Warm.Loaded, 1u);
      EXPECT_EQ(Warm.LiveSteps, 0u);
      EXPECT_TRUE(Warm.Findings == Cold.Findings);
    }
  }
}

TEST(PersistCacheTest, FuzzedRoundTripIdenticalFindings) {
  // 200 random programs, strategies cycling per seed: save on the first
  // run, full replay on the second, identical findings both times.
  uint64_t TotalReplayedRuns = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ProgramGenerator Gen(Seed * 12289);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    IterationStrategy S = Seed % 3 == 0   ? IterationStrategy::Recursive
                          : Seed % 3 == 1 ? IterationStrategy::Worklist
                                          : IterationStrategy::Parallel;
    AnalysisOptions Opts =
        withOptions().terminationGoal().strategy(S).threads(
            S == IterationStrategy::Parallel ? 4 : 0);

    ScratchDir Dir("fuzz");
    RunOutcome Cold = runOnce(Source, Dir.str(), Opts);
    ASSERT_TRUE(Cold.Ok);
    RunOutcome Warm = runOnce(Source, Dir.str(), Opts);
    ASSERT_TRUE(Warm.Ok);
    EXPECT_EQ(Warm.Loaded, 1u);
    EXPECT_EQ(Warm.LiveSteps, 0u) << "live steps after replay";
    EXPECT_TRUE(Warm.Findings == Cold.Findings)
        << "warm:\n" << Warm.Findings.pretty() << "\ncold:\n"
        << Cold.Findings.pretty();
    TotalReplayedRuns += Warm.LiveSteps == 0;
  }
  EXPECT_EQ(TotalReplayedRuns, 200u);
}

} // namespace
