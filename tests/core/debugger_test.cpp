//===- tests/core/debugger_test.cpp - AbstractDebugger API tests ----------===//

#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

std::unique_ptr<AbstractDebugger>
makeDebugger(const std::string &Source, bool TerminationGoal = false) {
  DiagnosticsEngine Diags;
  AbstractDebugger::Options Opts;
  Opts.TerminationGoal = TerminationGoal;
  auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
  EXPECT_NE(Dbg, nullptr) << Diags.str();
  if (Dbg)
    Dbg->analyze();
  return Dbg;
}

bool hasCondition(const AbstractDebugger &Dbg, const std::string &Needle) {
  for (const NecessaryCondition &C : Dbg.conditions())
    if (C.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

std::string allConditions(const AbstractDebugger &Dbg) {
  std::string Out;
  for (const NecessaryCondition &C : Dbg.conditions())
    Out += C.str() + "\n";
  return Out;
}

TEST(AbstractDebuggerTest, CreateRejectsBadSource) {
  DiagnosticsEngine Diags;
  EXPECT_EQ(AbstractDebugger::create("program p; begin x := end.", Diags),
            nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(AbstractDebuggerTest, ForProgramReportsNCondition) {
  auto Dbg = makeDebugger(paper::ForProgram);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(hasCondition(*Dbg, "n in [-oo, -1]")) << allConditions(*Dbg);
}

TEST(AbstractDebuggerTest, WhileProgramReportsBCondition) {
  auto Dbg = makeDebugger(paper::WhileProgram, /*TerminationGoal=*/true);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(hasCondition(*Dbg, "b = false")) << allConditions(*Dbg);
}

TEST(AbstractDebuggerTest, FactProgramReportsXCondition) {
  auto Dbg = makeDebugger(paper::FactProgram, /*TerminationGoal=*/true);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(hasCondition(*Dbg, "x in [0, +oo]")) << allConditions(*Dbg);
}

TEST(AbstractDebuggerTest, SelectProgramReportsNCondition) {
  auto Dbg = makeDebugger(paper::SelectProgram, /*TerminationGoal=*/true);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(hasCondition(*Dbg, "n in [-oo, 10]")) << allConditions(*Dbg);
}

TEST(AbstractDebuggerTest, ConditionsAreReportedAtOrigin) {
  // The condition must be reported once near the read, not at each of
  // the downstream uses.
  auto Dbg = makeDebugger(paper::ForProgram);
  ASSERT_NE(Dbg, nullptr);
  unsigned NConditions = 0;
  for (const NecessaryCondition &C : Dbg->conditions())
    NConditions += C.Var == "n";
  EXPECT_EQ(NConditions, 1u) << allConditions(*Dbg);
}

TEST(AbstractDebuggerTest, InvariantWarnings) {
  auto Dbg = makeDebugger("program p; var i : integer;\n"
                          "begin read(i); invariant(i >= 0) end.");
  ASSERT_NE(Dbg, nullptr);
  ASSERT_EQ(Dbg->invariantWarnings().size(), 1u);
  EXPECT_NE(Dbg->invariantWarnings()[0].Message.find("may be violated"),
            std::string::npos);
}

TEST(AbstractDebuggerTest, ProvedInvariantHasNoWarning) {
  auto Dbg = makeDebugger("program p; var i : integer;\n"
                          "begin i := 5; invariant(i = 5) end.");
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(Dbg->invariantWarnings().empty());
}

TEST(AbstractDebuggerTest, AlwaysViolatedInvariant) {
  auto Dbg = makeDebugger("program p; var i : integer;\n"
                          "begin i := 5; invariant(i = 6) end.");
  ASSERT_NE(Dbg, nullptr);
  ASSERT_EQ(Dbg->invariantWarnings().size(), 1u);
  EXPECT_NE(Dbg->invariantWarnings()[0].Message.find("always violated"),
            std::string::npos);
}

TEST(AbstractDebuggerTest, SpecSatisfiabilityVerdict) {
  auto Ok = makeDebugger("program p; var i : integer; begin i := 1 end.");
  EXPECT_TRUE(Ok->someExecutionMaySatisfySpec());
  // The intermittent point is unreachable: no execution can satisfy it.
  auto Bad = makeDebugger("program p; var i : integer;\n"
                          "begin i := 0; if i > 5 then intermittent(true)\n"
                          "end.");
  EXPECT_FALSE(Bad->someExecutionMaySatisfySpec());
}

TEST(AbstractDebuggerTest, MainStatesRendersStores) {
  const char *Source = "program p; var i : integer;\n"
                       "begin i := 0; while i < 100 do i := i + 1 end.";
  // i is dead at the exit: the default liveness pruning stops tracking
  // it there and the inspector flags it as pruned instead of rendering
  // a value.
  auto Dbg = makeDebugger(Source);
  ASSERT_NE(Dbg, nullptr);
  std::vector<PointState> States = Dbg->mainStates("exit");
  ASSERT_FALSE(States.empty());
  bool Pruned = false;
  for (const PointState &S : States) {
    // Filtered query only contains matching points.
    EXPECT_EQ(S.PointDesc.find("while head"), std::string::npos);
    for (const std::string &V : S.PrunedVars)
      Pruned |= V == "i";
  }
  EXPECT_TRUE(Pruned);

  // Unpruned, the exit store renders the loop's final value.
  DiagnosticsEngine Diags;
  auto Full = AbstractDebugger::create(
      Source, Diags, AbstractDebugger::Options().prune(false));
  ASSERT_NE(Full, nullptr) << Diags.str();
  Full->analyze();
  bool Found = false;
  for (const PointState &S : Full->mainStates("exit")) {
    EXPECT_TRUE(S.PrunedVars.empty());
    for (const StateBinding &B : S.Bindings)
      Found |= B.Var == "i" && B.Value == "[100, 100]";
  }
  EXPECT_TRUE(Found);
}

TEST(AbstractDebuggerTest, StatsArePopulated) {
  auto Dbg = makeDebugger(paper::McCarthyProgram);
  ASSERT_NE(Dbg, nullptr);
  const AnalysisStats &S = Dbg->stats();
  EXPECT_GT(S.ControlPoints, 100u); // after unfolding (11 instances)
  EXPECT_GT(S.Unions, 0u);
  EXPECT_GT(S.Widenings, 0u);
  EXPECT_GE(S.Phases.size(), 3u);
  EXPECT_GT(S.CpuSeconds, 0.0);
  std::string Rendered = S.str();
  EXPECT_NE(Rendered.find("Control points"), std::string::npos);
}

TEST(AbstractDebuggerTest, ChecksAccessible) {
  auto Dbg = makeDebugger(paper::BinarySearchProgram);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_TRUE(Dbg->checks().allSafe());
}

TEST(AbstractDebuggerTest, McCarthyInvariantStudy) {
  // m's last read is the writeln at the very end, which evaluates no
  // checks, so m is dead at the exit and pruned by default; disable
  // pruning to inspect the final value the invariant pins.
  DiagnosticsEngine Diags;
  auto Dbg =
      AbstractDebugger::create(paper::McCarthyWithInvariant, Diags,
                               AbstractDebugger::Options().prune(false));
  ASSERT_NE(Dbg, nullptr) << Diags.str();
  Dbg->analyze();
  // m = 91 is visible in the final state at the exit.
  bool Found = false;
  for (const PointState &S : Dbg->mainStates("exit of mccarthy"))
    for (const StateBinding &B : S.Bindings)
      Found |= B.Var == "m" && B.Value == "[91, 91]";
  EXPECT_TRUE(Found);
}

TEST(AbstractDebuggerTest, QueriesBeforeAnalyzeThrow) {
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(
      "program p; var i : integer; begin i := 1 end.", Diags);
  ASSERT_NE(Dbg, nullptr);
  EXPECT_FALSE(Dbg->analyzed());
  EXPECT_THROW(Dbg->stats(), std::logic_error);
  EXPECT_THROW(Dbg->conditions(), std::logic_error);
  EXPECT_THROW(Dbg->invariantWarnings(), std::logic_error);
  EXPECT_THROW(Dbg->checks(), std::logic_error);
  EXPECT_THROW(Dbg->someExecutionMaySatisfySpec(), std::logic_error);
  EXPECT_THROW(Dbg->stateAt(SourceLoc(1, 0)), std::logic_error);
  EXPECT_THROW(Dbg->mainStates(), std::logic_error);
  Dbg->analyze();
  EXPECT_TRUE(Dbg->analyzed());
  EXPECT_NO_THROW(Dbg->stats());
  EXPECT_NO_THROW(Dbg->conditions());
}

TEST(AbstractDebuggerTest, RepeatedAnalyzeWarmStartsAndIsIdentical) {
  DiagnosticsEngine Diags;
  AbstractDebugger::Options Opts;
  Opts.TerminationGoal = true;
  Opts.BackwardRounds = 3;
  auto Dbg = AbstractDebugger::create(paper::McCarthyProgram, Diags, Opts);
  ASSERT_NE(Dbg, nullptr) << Diags.str();

  Dbg->analyze();
  std::string FirstConditions = allConditions(*Dbg);
  size_t FirstWarnings = Dbg->invariantWarnings().size();
  json::Value FirstStates = json::Value::array();
  for (const PointState &S : Dbg->mainStates())
    FirstStates.push(S.toJson());

  // A second analyze() on the same engine warm-starts from the first
  // run's recordings: the stable bulk of the chain replays (skips > 0)
  // and every published result is unchanged.
  Dbg->analyze();
  EXPECT_GT(Dbg->stats().ComponentSkips, 0u);
  EXPECT_GT(Dbg->stats().SkippedSteps, 0u);
  EXPECT_EQ(allConditions(*Dbg), FirstConditions);
  EXPECT_EQ(Dbg->invariantWarnings().size(), FirstWarnings);
  json::Value SecondStates = json::Value::array();
  for (const PointState &S : Dbg->mainStates())
    SecondStates.push(S.toJson());
  EXPECT_EQ(SecondStates.str(), FirstStates.str());

  // With warm starts off, a repeated analyze() records nothing and
  // skips nothing — it reproduces the cold run exactly.
  Opts.WarmStart = false;
  DiagnosticsEngine ColdDiags;
  auto Cold = AbstractDebugger::create(paper::McCarthyProgram, ColdDiags, Opts);
  ASSERT_NE(Cold, nullptr) << ColdDiags.str();
  Cold->analyze();
  Cold->analyze();
  EXPECT_EQ(Cold->stats().ComponentSkips, 0u);
  EXPECT_EQ(Cold->stats().SkippedSteps, 0u);
  EXPECT_EQ(allConditions(*Cold), FirstConditions);
}

} // namespace
