//===- tests/core/incremental_diff_test.cpp - Warm-start differential -----===//
//
// The warm-start machinery (WarmStartMemo replay in the solver, the
// per-edge link-transfer memos in the supergraph, the per-slot dirty
// tracking in the analyzer) is required to be *invisible* in every
// observable result: a warm-started refinement chain must produce
// bitwise-identical invariants, findings and envelope flags to a cold
// chain, differing only in the work counters. This battery pins that
// guarantee on 200 random programs and the paper's examples, across all
// three iteration strategies; the tsan preset reruns it to check the
// parallel strategy's shared replay bookkeeping for data races.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"

#include "../common/AnalysisTestUtil.h"
#include "../common/RandomProgramGen.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

IterationStrategy strategyFor(uint64_t Seed) {
  switch (Seed % 3) {
  case 0:
    return IterationStrategy::Recursive;
  case 1:
    return IterationStrategy::Worklist;
  default:
    return IterationStrategy::Parallel;
  }
}

/// The findings document minus the work counters: warm and cold runs
/// agree on everything except `stats` and `metrics` (evaluation counts,
/// skip counters, timings), which are exactly the keys stripped here.
json::Value semanticFindings(const AnalysisResult &R) {
  json::Value Doc = R.toJson();
  json::Value Out = json::Value::object();
  for (const auto &KV : Doc.members())
    if (KV.first != "stats" && KV.first != "metrics")
      Out.set(KV.first, KV.second);
  return Out;
}

/// Copy of \p Base for deriving the warm/cold variants of one
/// configuration without mutating it in place.
AnalysisOptions derive(const AnalysisOptions &Base) { return Base; }

/// Runs \p Source warm and cold under \p S and asserts identical
/// findings JSON and identical per-point envelope states. Returns the
/// warm run's component-skip count so callers can assert the machinery
/// actually engaged.
uint64_t expectWarmColdIdentical(const std::string &Source,
                                 IterationStrategy S, unsigned Rounds) {
  AnalysisOptions Base = withOptions()
                             .terminationGoal()
                             .strategy(S)
                             .threads(S == IterationStrategy::Parallel ? 4 : 0)
                             .backwardRounds(Rounds);

  DiagnosticsEngine WarmDiags;
  auto WarmSession =
      AnalysisSession::create(Source, WarmDiags, derive(Base).warmStart(true));
  EXPECT_NE(WarmSession, nullptr) << WarmDiags.str();
  DiagnosticsEngine ColdDiags;
  auto ColdSession =
      AnalysisSession::create(Source, ColdDiags, derive(Base).warmStart(false));
  EXPECT_NE(ColdSession, nullptr) << ColdDiags.str();
  if (!WarmSession || !ColdSession)
    return 0;

  AnalysisResult Warm = WarmSession->run();
  AnalysisResult Cold = ColdSession->run();

  EXPECT_EQ(Cold.stats().ComponentSkips, 0u);
  EXPECT_EQ(Cold.stats().SkippedSteps, 0u);

  json::Value WarmDoc = semanticFindings(Warm);
  json::Value ColdDoc = semanticFindings(Cold);
  EXPECT_TRUE(WarmDoc == ColdDoc)
      << "warm:\n" << WarmDoc.pretty() << "\ncold:\n" << ColdDoc.pretty();

  // The structured per-point states (reachability, InEnvelope, variable
  // bindings) must agree too — they are the debugger's user-facing view
  // of the invariants.
  std::vector<PointState> WarmStates = Warm.mainStates();
  std::vector<PointState> ColdStates = Cold.mainStates();
  EXPECT_EQ(WarmStates.size(), ColdStates.size());
  if (WarmStates.size() != ColdStates.size())
    return 0;
  for (size_t I = 0; I < WarmStates.size(); ++I) {
    EXPECT_EQ(WarmStates[I].Reachable, ColdStates[I].Reachable);
    EXPECT_EQ(WarmStates[I].InEnvelope, ColdStates[I].InEnvelope)
        << "InEnvelope differs at point " << WarmStates[I].PointDesc;
    EXPECT_TRUE(WarmStates[I].toJson() == ColdStates[I].toJson())
        << "state differs at point " << WarmStates[I].PointDesc;
  }
  return Warm.stats().ComponentSkips;
}

TEST(IncrementalDiffTest, TwoHundredSeedsWarmEqualsCold) {
  // 200 random programs, strategies cycling per seed, two backward
  // rounds so the later phases have recorded memos to replay. The
  // invariants are compared store-by-store at every supergraph node
  // (sharing one AST between the analyzers keeps StoreOps::equal
  // meaningful).
  uint64_t TotalSkips = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ProgramGenerator Gen(Seed * 9973);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    IterationStrategy S = strategyFor(Seed);

    auto Warm = analyzeProgram(
        Source, withOptions()
                    .terminationGoal()
                    .strategy(S)
                    .threads(S == IterationStrategy::Parallel ? 4 : 0)
                    .backwardRounds(2)
                    .warmStart(true));
    ASSERT_TRUE(Warm.FE.SemaOk);
    auto Cold = reanalyze(Warm, withOptions()
                                    .terminationGoal()
                                    .strategy(S)
                                    .threads(S == IterationStrategy::Parallel
                                                 ? 4
                                                 : 0)
                                    .backwardRounds(2)
                                    .warmStart(false));

    const StoreOps &Ops = Warm.An->storeOps();
    ASSERT_EQ(Warm.An->graph().numNodes(), Cold->graph().numNodes());
    for (unsigned Node = 0; Node < Warm.An->graph().numNodes(); ++Node) {
      EXPECT_TRUE(Ops.equal(Warm.An->forwardAt(Node), Cold->forwardAt(Node)))
          << "forward invariant differs at node " << Node;
      EXPECT_TRUE(Ops.equal(Warm.An->envelopeAt(Node), Cold->envelopeAt(Node)))
          << "envelope differs at node " << Node;
    }
    EXPECT_EQ(Cold->stats().ComponentSkips, 0u);
    TotalSkips += Warm.An->stats().ComponentSkips;
  }
  // The battery is vacuous if warm starts never replay anything.
  EXPECT_GT(TotalSkips, 0u);
}

TEST(IncrementalDiffTest, FindingsIdenticalOnPaperPrograms) {
  const char *const Programs[] = {
      paper::ForProgram,      paper::WhileProgram,
      paper::FactProgram,     paper::SelectProgram,
      paper::IntermittentProgram, paper::McCarthyProgram,
      paper::McCarthyBuggy,   paper::BinarySearchProgram,
  };
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    uint64_t Skips = 0;
    for (IterationStrategy S :
         {IterationStrategy::Recursive, IterationStrategy::Worklist,
          IterationStrategy::Parallel})
      Skips += expectWarmColdIdentical(Source, S, /*Rounds=*/3);
    EXPECT_GT(Skips, 0u) << "warm start never engaged";
  }
}

TEST(IncrementalDiffTest, FindingsIdenticalOnRandomPrograms) {
  // Full findings-document comparison on a slice of the random battery
  // (all three strategies per seed; the 200-seed store-level test above
  // covers breadth, this covers the serialized findings and states).
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    ProgramGenerator Gen(Seed * 7717);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    for (IterationStrategy S :
         {IterationStrategy::Recursive, IterationStrategy::Worklist,
          IterationStrategy::Parallel})
      expectWarmColdIdentical(Source, S, /*Rounds=*/2);
  }
}

TEST(IncrementalDiffTest, WarmRunDoesLessWorkOnLaterRounds) {
  // The perf claim behind the machinery: on a multi-round chain over a
  // stable program, the warm run's live evaluation count drops well
  // below the cold run's (every round past the first replays the
  // still-stable components).
  AnalysisOptions Base = withOptions().terminationGoal().backwardRounds(4);
  auto Warm = analyzeProgram(paper::McCarthyProgram,
                             derive(Base).warmStart(true));
  auto Cold = reanalyze(Warm, derive(Base).warmStart(false));
  auto liveSteps = [](const AnalysisStats &S) {
    uint64_t Steps = 0;
    for (const PhaseStats &P : S.Phases)
      Steps += P.WideningSteps + P.NarrowingSteps;
    return Steps;
  };
  uint64_t WarmSteps = liveSteps(Warm.An->stats());
  uint64_t ColdSteps = liveSteps(Cold->stats());
  EXPECT_LE(WarmSteps * 2, ColdSteps)
      << "expected >= 2x step reduction, warm " << WarmSteps << " cold "
      << ColdSteps;
  // Replay must account for exactly the work the cold run performed:
  // live steps plus skipped steps equals the cold total.
  EXPECT_EQ(WarmSteps + Warm.An->stats().SkippedSteps, ColdSteps);
}

} // namespace
