//===- tests/core/liveness_prune_test.cpp - Pruning differential ----------===//
//
// Liveness-driven slot pruning is a pure storage optimization: the
// analysis stops *tracking* dead slots, it never changes what it
// concludes. This battery pins that guarantee as a differential against
// prune(false):
//  - findings documents bitwise identical (verdict, necessary
//    conditions, invariant warnings, check classifications),
//  - every live variable's forward and envelope value bitwise equal at
//    every supergraph node (200 random programs, strategies cycling),
//  - the structured point states equal modulo the documented PrunedVars
//    contract: a pruned run shows a subset of the unpruned bindings and
//    names every dropped variable in PrunedVars,
//  - warm-started chains and demand-driven queries behave identically,
//  - the machinery actually engages (pruned-slot counters are nonzero),
//    so the battery cannot pass vacuously.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"
#include "semantics/Liveness.h"
#include "support/Metrics.h"

#include "../common/AnalysisTestUtil.h"
#include "../common/RandomProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

using namespace syntox;
using namespace syntox::test;

namespace {

IterationStrategy strategyFor(uint64_t Seed) {
  switch (Seed % 3) {
  case 0:
    return IterationStrategy::Recursive;
  case 1:
    return IterationStrategy::Worklist;
  default:
    return IterationStrategy::Parallel;
  }
}

/// The findings document minus the work counters (`stats`, `metrics`):
/// pruned and unpruned runs agree on everything semantic and differ
/// only in evaluation/pruning telemetry.
json::Value semanticFindings(const AnalysisResult &R) {
  json::Value Doc = R.toJson();
  json::Value Out = json::Value::object();
  for (const auto &KV : Doc.members())
    if (KV.first != "stats" && KV.first != "metrics")
      Out.set(KV.first, KV.second);
  return Out;
}

AnalysisOptions derive(const AnalysisOptions &Base) { return Base; }

/// Every named variable of the program: globals plus each routine's
/// owned locals/formals. The store-level sweep queries all of them at
/// every node — out-of-scope variables read identically (absent) from
/// both runs, so the sweep needs no scope filtering.
std::vector<const VarDecl *> allVars(const AnalyzedProgram &P) {
  std::vector<const VarDecl *> Out;
  for (const VarDecl *V : P.FE.Program->ownedVars())
    Out.push_back(V);
  for (RoutineDecl *R : P.FE.Routines)
    for (const VarDecl *V : R->ownedVars())
      Out.push_back(V);
  return Out;
}

/// The PrunedVars contract, point by point: reachability flags equal;
/// every binding the pruned run shows appears with the identical
/// rendering in the unpruned run; every unpruned binding is either
/// reproduced exactly or its variable is named in PrunedVars; the
/// unpruned run never reports pruning.
void expectStatesMatchModuloPruning(const std::vector<PointState> &Pruned,
                                    const std::vector<PointState> &Full) {
  ASSERT_EQ(Pruned.size(), Full.size());
  for (size_t I = 0; I < Pruned.size(); ++I) {
    const PointState &P = Pruned[I];
    const PointState &F = Full[I];
    EXPECT_EQ(P.Reachable, F.Reachable) << F.PointDesc;
    EXPECT_EQ(P.InEnvelope, F.InEnvelope) << F.PointDesc;
    EXPECT_TRUE(F.PrunedVars.empty())
        << "unpruned run reported pruning at " << F.PointDesc;
    for (const StateBinding &B : P.Bindings) {
      auto It = std::find_if(
          F.Bindings.begin(), F.Bindings.end(),
          [&](const StateBinding &FB) { return FB.Var == B.Var; });
      ASSERT_NE(It, F.Bindings.end())
          << B.Var << " constrained only under pruning at " << F.PointDesc;
      EXPECT_EQ(It->Value, B.Value)
          << B.Var << " differs at " << F.PointDesc;
    }
    for (const StateBinding &B : F.Bindings) {
      bool Shown = std::any_of(
          P.Bindings.begin(), P.Bindings.end(), [&](const StateBinding &PB) {
            return PB.Var == B.Var && PB.Value == B.Value;
          });
      bool PrunedAway = std::find(P.PrunedVars.begin(), P.PrunedVars.end(),
                                  B.Var) != P.PrunedVars.end();
      EXPECT_TRUE(Shown || PrunedAway)
          << B.Var << " = " << B.Value << " lost (not pruned) at "
          << F.PointDesc;
    }
  }
}

/// Runs \p Source pruned and unpruned under \p Base and asserts
/// identical findings plus states-modulo-pruning.
void expectPrunedMatchesFull(const std::string &Source,
                             const AnalysisOptions &Base) {
  DiagnosticsEngine PrunedDiags;
  auto PrunedSession =
      AnalysisSession::create(Source, PrunedDiags, derive(Base).prune(true));
  ASSERT_NE(PrunedSession, nullptr) << PrunedDiags.str();
  DiagnosticsEngine FullDiags;
  auto FullSession =
      AnalysisSession::create(Source, FullDiags, derive(Base).prune(false));
  ASSERT_NE(FullSession, nullptr) << FullDiags.str();

  AnalysisResult Pruned = PrunedSession->run();
  AnalysisResult Full = FullSession->run();

  json::Value PrunedDoc = semanticFindings(Pruned);
  json::Value FullDoc = semanticFindings(Full);
  EXPECT_TRUE(PrunedDoc == FullDoc)
      << "pruned:\n" << PrunedDoc.pretty() << "\nfull:\n" << FullDoc.pretty();

  expectStatesMatchModuloPruning(Pruned.mainStates(), Full.mainStates());
}

//===----------------------------------------------------------------------===//
// Store-level equality on live slots
//===----------------------------------------------------------------------===//

TEST(LivenessPruneTest, TwoHundredSeedsLiveStatesMatchUnpruned) {
  // 200 random programs, strategies cycling per seed. The pruned and
  // unpruned analyzers share one AST (reanalyze), so StoreOps::get is
  // comparable key-by-key: every variable whose slot the liveness masks
  // call live must carry the bitwise-identical forward and envelope
  // value in both runs, at every supergraph node.
  uint64_t TotalPruned = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ProgramGenerator Gen(Seed * 8293);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    IterationStrategy S = strategyFor(Seed);
    AnalysisOptions Base =
        withOptions().terminationGoal().strategy(S).threads(
            S == IterationStrategy::Parallel ? 4 : 0);

    auto Pruned = analyzeProgram(Source, derive(Base).prune(true));
    ASSERT_TRUE(Pruned.FE.SemaOk);
    auto Full = reanalyze(Pruned, derive(Base).prune(false));

    const LivenessInfo *Live = Pruned.An->liveness();
    ASSERT_NE(Live, nullptr);
    const StoreOps &Ops = Pruned.An->storeOps();
    std::vector<const VarDecl *> Vars = allVars(Pruned);
    ASSERT_EQ(Pruned.An->graph().numNodes(), Full->graph().numNodes());
    for (unsigned Node = 0; Node < Pruned.An->graph().numNodes(); ++Node) {
      for (const VarDecl *V : Vars) {
        if (!Live->isLive(Node, V))
          continue;
        EXPECT_TRUE(Ops.get(Pruned.An->forwardAt(Node), V) ==
                    Ops.get(Full->forwardAt(Node), V))
            << "forward value of " << V->name() << " differs at node "
            << Node;
        EXPECT_TRUE(Ops.get(Pruned.An->envelopeAt(Node), V) ==
                    Ops.get(Full->envelopeAt(Node), V))
            << "envelope value of " << V->name() << " differs at node "
            << Node;
      }
    }
    EXPECT_EQ(Full->prunedSlots(), 0u);
    TotalPruned += Pruned.An->prunedSlots();
  }
  // The battery is vacuous if the random programs never have dead slots.
  EXPECT_GT(TotalPruned, 0u);
}

//===----------------------------------------------------------------------===//
// Findings documents and structured point states
//===----------------------------------------------------------------------===//

TEST(LivenessPruneTest, FindingsIdenticalOnPaperPrograms) {
  const char *const Programs[] = {
      paper::ForProgram,          paper::WhileProgram,
      paper::FactProgram,         paper::SelectProgram,
      paper::IntermittentProgram, paper::McCarthyProgram,
      paper::McCarthyBuggy,       paper::McCarthyWithInvariant,
      paper::BinarySearchProgram, paper::AckermannProgram,
  };
  for (const char *Source : Programs) {
    SCOPED_TRACE(Source);
    for (IterationStrategy S :
         {IterationStrategy::Recursive, IterationStrategy::Worklist,
          IterationStrategy::Parallel})
      expectPrunedMatchesFull(
          Source, withOptions().terminationGoal().strategy(S).threads(
                      S == IterationStrategy::Parallel ? 4 : 0));
  }
}

TEST(LivenessPruneTest, FindingsIdenticalOnRandomPrograms) {
  // Serialized findings and point states on a slice of the random
  // battery (the 200-seed test above covers store-level breadth).
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    ProgramGenerator Gen(Seed * 6121, /*WithAssertions=*/true);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    IterationStrategy S = strategyFor(Seed);
    expectPrunedMatchesFull(
        Source, withOptions().terminationGoal().strategy(S).threads(
                    S == IterationStrategy::Parallel ? 4 : 0));
  }
}

TEST(LivenessPruneTest, WarmStartedChainsMatchUnpruned) {
  // Pruning composes with the warm-start replay machinery: a
  // multi-round warm chain must still be a pure storage optimization.
  for (const char *Source :
       {paper::WhileProgram, paper::McCarthyProgram, paper::SelectProgram}) {
    SCOPED_TRACE(Source);
    expectPrunedMatchesFull(Source, withOptions()
                                        .terminationGoal()
                                        .warmStart(true)
                                        .backwardRounds(3));
  }
}

//===----------------------------------------------------------------------===//
// Demand-driven queries
//===----------------------------------------------------------------------===//

TEST(LivenessPruneTest, DemandQueriesMatchModuloPruning) {
  // At the intermittent assertion of each generated program: the
  // pruned demand answer must equal the pruned full-solve answer
  // bitwise, and the unpruned demand answer modulo PrunedVars.
  for (uint64_t Seed : {2u, 7u, 19u, 33u}) {
    ProgramGenerator Gen(Seed * 7919, /*WithAssertions=*/true);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    size_t Pos = Source.find("intermittent(");
    ASSERT_NE(Pos, std::string::npos);
    uint32_t Line = 1 + static_cast<uint32_t>(
                            std::count(Source.begin(), Source.end(), '\n') -
                            std::count(Source.begin() + Pos, Source.end(),
                                       '\n'));
    SourceLoc Loc(Line, 0);
    AnalysisOptions Base = withOptions().strategy(strategyFor(Seed));

    DiagnosticsEngine PrunedDiags;
    auto PrunedSession =
        AnalysisSession::create(Source, PrunedDiags, derive(Base).prune(true));
    ASSERT_NE(PrunedSession, nullptr) << PrunedDiags.str();
    AnalysisResult PrunedFull = PrunedSession->run();
    DemandResult PrunedDemand = PrunedSession->demandStateAt(Loc);
    ASSERT_TRUE(PrunedDemand.covers(Loc));

    // Demand vs full within the pruned configuration: bitwise.
    std::vector<PointState> Want = PrunedFull.stateAt(Loc);
    std::vector<PointState> Got = PrunedDemand.stateAt(Loc);
    ASSERT_EQ(Got.size(), Want.size());
    for (size_t I = 0; I < Want.size(); ++I)
      EXPECT_TRUE(Got[I].toJson() == Want[I].toJson())
          << "demand state differs at " << Want[I].PointDesc;

    // Pruned demand vs unpruned demand: equal modulo PrunedVars.
    DiagnosticsEngine FullDiags;
    auto FullSession =
        AnalysisSession::create(Source, FullDiags, derive(Base).prune(false));
    ASSERT_NE(FullSession, nullptr) << FullDiags.str();
    FullSession->run();
    DemandResult FullDemand = FullSession->demandStateAt(Loc);
    ASSERT_TRUE(FullDemand.covers(Loc));
    expectStatesMatchModuloPruning(Got, FullDemand.stateAt(Loc));
  }
}

//===----------------------------------------------------------------------===//
// Persist round-trip
//===----------------------------------------------------------------------===//

TEST(LivenessPruneTest, PersistRoundTripMatchesUnpruned) {
  // The disk cache stores pruned rows (the SoA codec serializes only
  // present slots); a cache-loaded rerun must still match the unpruned
  // analysis. PruneDeadSlots is part of the options hash, so the pruned
  // and unpruned caches never collide in one directory.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "syntox_liveness_prune_test";
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);

  auto runOnce = [&](bool Prune, uint64_t &Loaded) {
    MetricsRegistry Metrics;
    AnalysisOptions Opts = withOptions().terminationGoal().prune(Prune);
    Opts.CacheDir = Dir.string();
    Opts.Telem.Metrics = &Metrics;
    DiagnosticsEngine Diags;
    auto Session =
        AnalysisSession::create(paper::McCarthyProgram, Diags, Opts);
    EXPECT_NE(Session, nullptr) << Diags.str();
    AnalysisResult R = Session->run();
    Loaded = Metrics.counterValue("persist.loaded");
    return R;
  };

  uint64_t Ld = 0;
  AnalysisResult PrunedCold = runOnce(true, Ld);
  EXPECT_EQ(Ld, 0u);
  AnalysisResult PrunedWarm = runOnce(true, Ld);
  EXPECT_EQ(Ld, 1u) << "pruned rerun did not load its cache";
  AnalysisResult FullCold = runOnce(false, Ld);
  EXPECT_EQ(Ld, 0u) << "unpruned run loaded the pruned cache";
  AnalysisResult FullWarm = runOnce(false, Ld);
  EXPECT_EQ(Ld, 1u) << "unpruned rerun did not load its cache";

  EXPECT_TRUE(semanticFindings(PrunedCold) == semanticFindings(PrunedWarm));
  EXPECT_TRUE(semanticFindings(FullCold) == semanticFindings(FullWarm));
  EXPECT_TRUE(semanticFindings(PrunedWarm) == semanticFindings(FullWarm))
      << "cache-loaded pruned findings differ from unpruned";
  expectStatesMatchModuloPruning(PrunedWarm.mainStates(),
                                 FullWarm.mainStates());
  fs::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// The machinery engages and reports
//===----------------------------------------------------------------------===//

TEST(LivenessPruneTest, PruningEngagesAndReportsCounters) {
  // The While program writes its counter but never reads it after the
  // loop, so slots die before the exit: the default run must prune,
  // flag the dead variables in PrunedVars, and publish the counters;
  // the prune(false) run must do none of that.
  MetricsRegistry PrunedMetrics;
  AnalysisOptions PrunedOpts = withOptions().terminationGoal();
  PrunedOpts.Telem.Metrics = &PrunedMetrics;
  DiagnosticsEngine PrunedDiags;
  auto PrunedSession =
      AnalysisSession::create(paper::WhileProgram, PrunedDiags, PrunedOpts);
  ASSERT_NE(PrunedSession, nullptr) << PrunedDiags.str();
  AnalysisResult Pruned = PrunedSession->run();

  EXPECT_GT(PrunedMetrics.counterValue("store.pruned_slots"), 0u);
  size_t PrunedFlags = 0;
  for (const PointState &S : Pruned.mainStates())
    PrunedFlags += S.PrunedVars.size();
  EXPECT_GT(PrunedFlags, 0u);

  MetricsRegistry FullMetrics;
  AnalysisOptions FullOpts = withOptions().terminationGoal().prune(false);
  FullOpts.Telem.Metrics = &FullMetrics;
  DiagnosticsEngine FullDiags;
  auto FullSession =
      AnalysisSession::create(paper::WhileProgram, FullDiags, FullOpts);
  ASSERT_NE(FullSession, nullptr) << FullDiags.str();
  AnalysisResult Full = FullSession->run();

  EXPECT_EQ(FullMetrics.counterValue("store.pruned_slots"), 0u);
  for (const PointState &S : Full.mainStates())
    EXPECT_TRUE(S.PrunedVars.empty()) << S.PointDesc;
}

TEST(LivenessPruneTest, LivenessMasksNeverExceedUniverse) {
  // Sanity on the mask bookkeeping the counters are derived from.
  auto P = analyzeProgram(paper::FactProgram, withOptions().terminationGoal());
  ASSERT_TRUE(P.FE.SemaOk);
  const LivenessInfo *Live = P.An->liveness();
  ASSERT_NE(Live, nullptr);
  EXPECT_GT(Live->liveSlotCount(), 0u);
  EXPECT_LE(Live->liveSlotCount(), Live->slotUniverse());
  EXPECT_EQ(Live->slotUniverse(),
            uint64_t(P.An->graph().numNodes()) * Live->numSlots());
}

} // namespace
