//===- tests/core/session_test.cpp - AnalysisSession/Result API tests -----===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace syntox;

namespace {

std::unique_ptr<AnalysisSession> makeSession(const std::string &Source,
                                             AnalysisOptions Opts = {}) {
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Source, Diags, Opts);
  EXPECT_NE(Session, nullptr) << Diags.str();
  return Session;
}

std::vector<std::string> conditionStrings(
    const std::vector<NecessaryCondition> &Conds) {
  std::vector<std::string> Out;
  for (const NecessaryCondition &C : Conds)
    Out.push_back(C.str());
  return Out;
}

TEST(AnalysisSessionTest, CreateRejectsBadSource) {
  DiagnosticsEngine Diags;
  EXPECT_EQ(AnalysisSession::create("program p; begin x := end.", Diags),
            nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(AnalysisSessionTest, MigrationOldAndNewApiFindingsAgree) {
  // The same program and options through the deprecated direct-debugger
  // path and through the session must produce identical findings.
  std::string McIntermittent = paper::McCarthyProgram;
  McIntermittent.insert(McIntermittent.find("writeln(m)"),
                        "intermittent(m = 91);\n  ");
  for (const std::string &Source :
       {std::string(paper::ForProgram), McIntermittent}) {
    DiagnosticsEngine Diags;
    auto Dbg = AbstractDebugger::create(Source, Diags);
    ASSERT_NE(Dbg, nullptr);
    Dbg->analyze();

    auto Session = makeSession(Source);
    ASSERT_NE(Session, nullptr);
    AnalysisResult Result = Session->run();

    EXPECT_EQ(conditionStrings(Dbg->conditions()),
              conditionStrings(Result.conditions()));
    EXPECT_EQ(Dbg->invariantWarnings().size(),
              Result.invariantWarnings().size());
    EXPECT_EQ(Dbg->checks().summary().Total, Result.checks().summary().Total);
    EXPECT_EQ(Dbg->checks().summary().Safe, Result.checks().summary().Safe);
    EXPECT_EQ(Dbg->someExecutionMaySatisfySpec(),
              Result.someExecutionMaySatisfySpec());
    EXPECT_EQ(Dbg->stats().ControlPoints, Result.stats().ControlPoints);
  }
}

TEST(AnalysisSessionTest, ResultsSurviveLaterRuns) {
  auto Session = makeSession(paper::ForProgram);
  ASSERT_NE(Session, nullptr);
  AnalysisResult First = Session->run();
  std::vector<std::string> FirstConds = conditionStrings(First.conditions());
  ASSERT_FALSE(FirstConds.empty());

  // A second run with different options must not disturb the first
  // result (it owns a separate frozen engine).
  Session->options().terminationGoal(true);
  AnalysisResult Second = Session->run();
  EXPECT_EQ(conditionStrings(First.conditions()), FirstConds);

  // Results outlive the session.
  Session.reset();
  EXPECT_EQ(conditionStrings(First.conditions()), FirstConds);
  EXPECT_FALSE(conditionStrings(Second.conditions()).empty());
}

TEST(AnalysisSessionTest, StateAtQueriesTheStatementInspector) {
  auto Session = makeSession(paper::ForProgram);
  ASSERT_NE(Session, nullptr);
  AnalysisResult Result = Session->run();
  // Line 6 of the For program is `read(n)`.
  std::vector<PointState> States = Result.stateAt(SourceLoc(6, 0));
  ASSERT_FALSE(States.empty());
  bool SawN = false;
  for (const PointState &S : States) {
    EXPECT_EQ(S.Loc.Line, 6u);
    for (const StateBinding &B : S.Bindings)
      SawN |= B.Var == "n";
  }
  EXPECT_TRUE(SawN);
  // A line with no control point yields no states, not an error.
  EXPECT_TRUE(Result.stateAt(SourceLoc(9999, 0)).empty());
}

TEST(AnalysisSessionTest, FindingsJsonRoundTripsAndMatchesSchema) {
  auto Session = makeSession(paper::ForProgram);
  ASSERT_NE(Session, nullptr);
  AnalysisResult Result = Session->run();
  json::Value Doc = Result.toJson();

  // Required top-level keys of schemas/findings.schema.json.
  for (const char *Key : {"verdict", "conditions", "invariant_warnings",
                          "checks", "stats", "metrics"})
    EXPECT_TRUE(Doc.has(Key)) << Key;
  EXPECT_EQ(Doc.find("verdict")->asString(),
            "some_execution_may_satisfy_spec");
  const json::Value *Conds = Doc.find("conditions");
  ASSERT_TRUE(Conds && Conds->isArray());
  ASSERT_EQ(Conds->size(), Result.conditions().size());
  for (const json::Value &C : Conds->elements()) {
    EXPECT_TRUE(C.find("line") && C.find("line")->isInt());
    EXPECT_TRUE(C.find("condition") && C.find("condition")->isString());
    EXPECT_TRUE(C.find("point") && C.find("point")->isString());
  }
  const json::Value *Checks = Doc.find("checks");
  ASSERT_TRUE(Checks && Checks->find("summary") && Checks->find("results"));
  EXPECT_EQ(Checks->find("summary")->find("total")->asInt(),
            static_cast<int64_t>(Result.checks().summary().Total));
  for (const json::Value &R : Checks->find("results")->elements()) {
    EXPECT_TRUE(R.find("kind") && R.find("kind")->isString());
    EXPECT_TRUE(R.find("verdict") && R.find("verdict")->isString());
  }
  EXPECT_TRUE(Doc.find("stats")->find("phases")->isArray());

  // Writer -> parser round trip is the identity.
  std::optional<json::Value> Back = json::parse(Doc.pretty());
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(*Back == Doc);
}

TEST(AnalysisSessionTest, MetricsAccumulateAcrossRuns) {
  auto Session = makeSession(paper::ForProgram);
  ASSERT_NE(Session, nullptr);
  AnalysisResult First = Session->run();
  const json::Value *C1 = First.metrics().find("counters");
  ASSERT_TRUE(C1 && C1->find("solver.ascending_steps"));
  int64_t Steps1 = C1->find("solver.ascending_steps")->asInt();
  EXPECT_GT(Steps1, 0);

  AnalysisResult Second = Session->run();
  const json::Value *C2 = Second.metrics().find("counters");
  int64_t Steps2 = C2->find("solver.ascending_steps")->asInt();
  EXPECT_EQ(Steps2, 2 * Steps1) << "counters are session totals";
  // The first result's snapshot is frozen.
  EXPECT_EQ(First.metrics().find("counters")
                ->find("solver.ascending_steps")
                ->asInt(),
            Steps1);
}

TEST(AnalysisSessionTest, TraceJsonLinesGolden) {
  auto Session = makeSession(paper::ForProgram);
  ASSERT_NE(Session, nullptr);
  Session->enableTracing();
  Session->run();

  std::ostringstream OS;
  StreamTraceSink Sink(OS, TraceFormat::JsonLines);
  Session->flushTrace(Sink);

  const std::set<std::string> Vocabulary{
      "phase_begin", "phase_end",  "component_begin", "component_end",
      "widening",    "narrowing",  "token_unfold",    "cache_hit",
      "cache_miss",  "task_enqueue", "task_run",      "task_complete",
      "store_detach", "component_skip", "demand_skip"};
  std::vector<std::string> PhaseBegins;
  int PhaseDepth = 0;
  uint64_t LastTs = 0;
  std::istringstream In(OS.str());
  std::string Line;
  unsigned NumEvents = 0;
  while (std::getline(In, Line)) {
    ++NumEvents;
    std::optional<json::Value> V = json::parse(Line);
    ASSERT_TRUE(V.has_value()) << Line;
    std::string Ev = V->find("ev")->asString();
    EXPECT_TRUE(Vocabulary.count(Ev)) << Ev;
    // The default mask excludes the detail kinds.
    EXPECT_NE(Ev, "cache_hit");
    EXPECT_NE(Ev, "store_detach");
    uint64_t Ts = static_cast<uint64_t>(V->find("t")->asInt());
    EXPECT_GE(Ts, LastTs);
    LastTs = Ts;
    if (Ev == "phase_begin") {
      ++PhaseDepth;
      PhaseBegins.push_back(V->find("label")->asString());
    } else if (Ev == "phase_end") {
      --PhaseDepth;
    }
    EXPECT_GE(PhaseDepth, 0);
  }
  EXPECT_EQ(PhaseDepth, 0);
  EXPECT_GT(NumEvents, 4u);
  // The §3 schedule begins with the forward lfp phase.
  ASSERT_FALSE(PhaseBegins.empty());
  EXPECT_EQ(PhaseBegins.front(), "Forward analysis");

  // Flushing consumed the events.
  std::ostringstream OS2;
  StreamTraceSink Sink2(OS2, TraceFormat::JsonLines);
  Session->flushTrace(Sink2);
  EXPECT_TRUE(OS2.str().empty());
}

/// K independent heavy loop nests behind a branch tree: the parallel
/// strategy schedules them as separate tasks.
std::string wideProgram(unsigned Leaves) {
  std::string Out = "program gen;\nvar c : integer;\n";
  for (unsigned I = 0; I < Leaves; ++I)
    Out += "  x" + std::to_string(I) + ", y" + std::to_string(I) +
           " : integer;\n";
  Out += "begin\n  read(c);\n";
  for (unsigned I = 0; I < Leaves; ++I) {
    std::string X = "x" + std::to_string(I), Y = "y" + std::to_string(I);
    Out += "  if c = " + std::to_string(I) + " then begin\n";
    Out += "    " + X + " := 0;\n";
    Out += "    while " + X + " < 500 do begin\n";
    Out += "      " + Y + " := 0;\n";
    Out += "      while " + Y + " < 500 do " + Y + " := " + Y + " + 1;\n";
    Out += "      " + X + " := " + X + " + 1\n";
    Out += "    end\n";
    Out += "  end;\n";
  }
  Out += "  c := 0\nend.\n";
  return Out;
}

TEST(AnalysisSessionTest, ChromeTraceOfParallelRunShowsTaskSpans) {
  auto Session = makeSession(
      wideProgram(4),
      AnalysisOptions().strategy(IterationStrategy::Parallel).threads(4));
  ASSERT_NE(Session, nullptr);
  Session->enableTracing();
  Session->run();

  std::ostringstream OS;
  StreamTraceSink Sink(OS, TraceFormat::Chrome);
  Session->flushTrace(Sink);

  std::string Error;
  std::optional<json::Value> Doc = json::parse(OS.str(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const json::Value *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  // Spans balance per thread; component spans exist on worker threads.
  std::map<int64_t, int> DepthPerTid;
  std::set<int64_t> ComponentTids;
  unsigned TaskSpans = 0;
  for (const json::Value &E : Events->elements()) {
    const std::string &Ph = E.find("ph")->asString();
    int64_t Tid = E.find("tid")->asInt();
    const std::string &Kind = E.find("args")->find("kind")->asString();
    if (Ph == "B") {
      ++DepthPerTid[Tid];
      if (Kind == "component_begin")
        ComponentTids.insert(Tid);
      if (Kind == "task_run")
        ++TaskSpans;
    } else if (Ph == "E") {
      --DepthPerTid[Tid];
      EXPECT_GE(DepthPerTid[Tid], 0);
    }
  }
  for (const auto &[Tid, Depth] : DepthPerTid)
    EXPECT_EQ(Depth, 0) << "unbalanced spans on tid " << Tid;
  EXPECT_GE(TaskSpans, 4u) << "one task_run span per independent component";
  EXPECT_GE(ComponentTids.size(), 2u)
      << "component stabilizations spread over worker threads";
}

/// toJson() minus the stats/metrics counters (which legitimately differ
/// between cold and warm-replayed runs).
json::Value findingsOnly(const AnalysisResult &R) {
  json::Value Doc = R.toJson();
  json::Value Out = json::Value::object();
  for (const auto &KV : Doc.members())
    if (KV.first != "stats" && KV.first != "metrics")
      Out.set(KV.first, KV.second);
  return Out;
}

uint64_t liveSteps(const AnalysisResult &R) {
  uint64_t Live = 0;
  for (const PhaseStats &P : R.stats().Phases)
    Live += P.WideningSteps + P.NarrowingSteps;
  return Live;
}

TEST(AnalysisSessionTest, EngineReuseOnlyWhenUnobserved) {
  // A dropped result frees the engine for warm in-place reuse; a held
  // one pins it and forces the next run onto a fresh engine. Findings
  // are identical either way.
  MetricsRegistry Metrics;
  AnalysisOptions Opts;
  Opts.Telem.Metrics = &Metrics;
  auto Session = makeSession(paper::McCarthyProgram, Opts);
  ASSERT_NE(Session, nullptr);

  json::Value ColdFindings;
  uint64_t ColdLive = 0;
  {
    AnalysisResult First = Session->run();
    ColdFindings = findingsOnly(First);
    ColdLive = liveSteps(First);
  } // First dropped: nothing can observe the engine anymore
  EXPECT_EQ(Metrics.counterValue("session.engine_reuses"), 0u);
  EXPECT_GT(ColdLive, 0u);

  AnalysisResult Warm = Session->run();
  EXPECT_EQ(Metrics.counterValue("session.engine_reuses"), 1u);
  EXPECT_TRUE(findingsOnly(Warm) == ColdFindings);
  // The in-memory warm chain replays every stable component.
  EXPECT_EQ(liveSteps(Warm), 0u);

  // Warm is still alive and shares the engine: this run must not touch
  // it (immutability of published results) and builds a fresh engine.
  AnalysisResult Pinned = Session->run();
  EXPECT_EQ(Metrics.counterValue("session.engine_reuses"), 1u);
  EXPECT_TRUE(findingsOnly(Pinned) == ColdFindings);
  EXPECT_EQ(liveSteps(Pinned), ColdLive);
}

TEST(AnalysisSessionTest, OptionChangeForcesFreshEngine) {
  MetricsRegistry Metrics;
  AnalysisOptions Opts;
  Opts.Telem.Metrics = &Metrics;
  auto Session = makeSession(paper::ForProgram, Opts);
  ASSERT_NE(Session, nullptr);
  Session->run(); // result dropped immediately
  Session->options().NarrowingPasses += 1;
  AnalysisResult R = Session->run();
  // Changed configuration: the kept engine is not compatible, so no
  // reuse happened and the run paid a cold solve under the new knobs.
  EXPECT_EQ(Metrics.counterValue("session.engine_reuses"), 0u);
  EXPECT_GT(liveSteps(R), 0u);
}

} // namespace
