//===- tests/core/batch_test.cpp - Cross-request batch scheduling ---------===//
//
// AnalysisBatch runs many sessions over one shared worker-slot budget;
// scheduling must affect only when a request runs, never what it
// computes. The battery here pins that: a 200-seed random corpus
// (all four generator families, all three iteration strategies, the
// parallel requests with the transfer cache pinned on) analyzed through
// a batch must produce findings bitwise-identical to running each
// program through its own sequential AnalysisSession — cold, and warm
// through per-program persistent cache directories. A tsan build of
// this binary doubles as the whole-analysis stress for the owned-cache
// protocol and the budget-sharing pools.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisBatch.h"

#include "../common/RandomProgramGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace syntox;
using test::ProgramGenerator;

namespace {

std::string corpusProgram(uint64_t Seed) {
  static const ProgramGenerator::Family Fams[] = {
      ProgramGenerator::Family::Plain,
      ProgramGenerator::Family::GotoHeavy,
      ProgramGenerator::Family::DeepUnfolding,
      ProgramGenerator::Family::AliasingHeavy,
  };
  ProgramGenerator G(Seed, /*WithAssertions=*/true);
  return G.generate(Fams[Seed % 4]);
}

/// Per-seed options sweeping the three strategies; the parallel third
/// pins the transfer cache on so batches exercise the owned-mode cache
/// protocol end to end.
AnalysisOptions optionsFor(uint64_t Seed) {
  AnalysisOptions Opts;
  switch (Seed % 3) {
  case 0:
    Opts.Strategy = IterationStrategy::Recursive;
    break;
  case 1:
    Opts.Strategy = IterationStrategy::Worklist;
    break;
  default:
    Opts.Strategy = IterationStrategy::Parallel;
    Opts.NumThreads = 2;
    Opts.transferCache(true);
    break;
  }
  return Opts;
}

/// The findings document minus the timing/telemetry members.
std::string findingsOnly(const AnalysisResult &R) {
  json::Value Full = R.toJson();
  json::Value V = json::Value::object();
  for (const auto &KV : Full.members())
    if (KV.first != "stats" && KV.first != "metrics")
      V.set(KV.first, KV.second);
  return V.str();
}

std::string sequentialFindings(const std::string &Source,
                               AnalysisOptions Opts) {
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Source, Diags, std::move(Opts));
  if (!Session)
    return "frontend error: " + Diags.str();
  return findingsOnly(Session->run());
}

TEST(AnalysisBatchTest, OutcomesArriveInAddOrder) {
  AnalysisBatch Batch;
  Batch.add("program a; var x : integer; begin x := 1 end.");
  Batch.add("program b; var y : integer; begin y := 2 end.");
  auto Outcomes = Batch.runAll();
  ASSERT_EQ(Outcomes.size(), 2u);
  EXPECT_EQ(Outcomes[0].Index, 0u);
  EXPECT_EQ(Outcomes[1].Index, 1u);
  EXPECT_TRUE(Outcomes[0].OK);
  EXPECT_TRUE(Outcomes[1].OK);
  EXPECT_EQ(Batch.metrics().counterValue("batch.requests"), 2u);
}

TEST(AnalysisBatchTest, FrontendErrorsSurfaceAsFailedOutcomes) {
  AnalysisBatch Batch;
  Batch.add("program a; var x : integer; begin x := 1 end.");
  Batch.add("program broken; begin x := end.");
  auto Outcomes = Batch.runAll();
  ASSERT_EQ(Outcomes.size(), 2u);
  EXPECT_TRUE(Outcomes[0].OK);
  EXPECT_FALSE(Outcomes[1].OK);
  EXPECT_FALSE(Outcomes[1].Error.empty());
  EXPECT_FALSE(Outcomes[1].Result.has_value());
}

TEST(AnalysisBatchTest, PeakLiveThreadsRespectsTheBudget) {
  AnalysisBatch::Config Cfg;
  Cfg.TotalThreads = 3;
  AnalysisBatch Batch(Cfg);
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    AnalysisOptions Opts;
    // All parallel: every request tries to spawn a nested solver pool.
    Opts.Strategy = IterationStrategy::Parallel;
    Opts.NumThreads = 4;
    Batch.add(corpusProgram(Seed), std::move(Opts));
  }
  auto Outcomes = Batch.runAll();
  for (const auto &O : Outcomes)
    EXPECT_TRUE(O.OK) << O.Error;
  EXPECT_LE(Batch.peakLiveThreads(), 3u);
}

TEST(AnalysisBatchTest, ColdBatchIsBitwiseIdenticalToSequential) {
  constexpr uint64_t Seeds = 200;
  AnalysisBatch::Config Cfg;
  Cfg.TotalThreads = 4;
  AnalysisBatch Batch(Cfg);
  std::vector<std::string> Sources;
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    Sources.push_back(corpusProgram(Seed));
    Batch.add(Sources.back(), optionsFor(Seed));
  }
  auto Outcomes = Batch.runAll();
  ASSERT_EQ(Outcomes.size(), Seeds);
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    ASSERT_TRUE(Outcomes[Seed].OK) << "seed " << Seed << ": "
                                   << Outcomes[Seed].Error;
    EXPECT_EQ(findingsOnly(*Outcomes[Seed].Result),
              sequentialFindings(Sources[Seed], optionsFor(Seed)))
        << "seed " << Seed;
  }
}

TEST(AnalysisBatchTest, WarmBatchIsBitwiseIdenticalToSequential) {
  // Warm traffic: per-seed persistent cache dirs primed by a first
  // sequential run; both the warm sequential reference and the warm
  // batch replay from the same primed state (the waves are serialized,
  // so sharing each seed's directory across them is race-free).
  constexpr uint64_t Seeds = 60;
  namespace fs = std::filesystem;
  fs::path Root = fs::temp_directory_path() / "syntox_batch_test_warm";
  std::error_code EC;
  fs::remove_all(Root, EC);

  std::vector<std::string> Sources, Dirs, Expected;
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    Sources.push_back(corpusProgram(Seed));
    fs::path Dir = Root / ("p" + std::to_string(Seed));
    fs::create_directories(Dir, EC);
    Dirs.push_back(Dir.string());
    AnalysisOptions Prime = optionsFor(Seed);
    Prime.CacheDir = Dirs.back();
    sequentialFindings(Sources.back(), std::move(Prime)); // prime only
    AnalysisOptions Warm = optionsFor(Seed);
    Warm.CacheDir = Dirs.back();
    Expected.push_back(
        sequentialFindings(Sources.back(), std::move(Warm)));
  }

  AnalysisBatch::Config Cfg;
  Cfg.TotalThreads = 4;
  AnalysisBatch Batch(Cfg);
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    AnalysisOptions Opts = optionsFor(Seed);
    Opts.CacheDir = Dirs[Seed];
    Batch.add(Sources[Seed], std::move(Opts));
  }
  auto Outcomes = Batch.runAll();
  ASSERT_EQ(Outcomes.size(), Seeds);
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    ASSERT_TRUE(Outcomes[Seed].OK) << "seed " << Seed << ": "
                                   << Outcomes[Seed].Error;
    EXPECT_EQ(findingsOnly(*Outcomes[Seed].Result), Expected[Seed])
        << "seed " << Seed;
  }
  fs::remove_all(Root, EC);
}

TEST(AnalysisBatchTest, RepeatedRunAllIsStable) {
  AnalysisBatch Batch;
  Batch.add(corpusProgram(7), optionsFor(7));
  auto First = Batch.runAll();
  auto Second = Batch.runAll(); // e.g. a warm second wave
  ASSERT_TRUE(First[0].OK);
  ASSERT_TRUE(Second[0].OK);
  EXPECT_EQ(findingsOnly(*First[0].Result),
            findingsOnly(*Second[0].Result));
}

} // namespace
