//===- tests/core/demand_query_test.cpp - Demand-driven query battery -----===//
//
// The demand-driven query engine must be *invisible* in every answer it
// gives: a cone-restricted solve answers exactly what a full refinement
// chain would, while performing zero live evaluations outside the cone.
// This battery pins both halves:
//  - cone computation unit tests on hand-built dependency digraphs
//    (chains, diamonds, cycles, token-unfolded call graphs),
//  - a 200-seed differential: demand answers bitwise-equal to the full
//    solve across all three iteration strategies and all three warm
//    states (cold, warm, cache-loaded), with per-node step audits
//    proving the out-of-cone zero-work guarantee,
//  - the session/result API contracts: pre-run demand queries throw
//    std::logic_error exactly like stateAt(), out-of-cone queries are
//    refused with std::out_of_range, never answered from unspecified
//    state.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"
#include "persist/WarmCache.h"

#include "../common/AnalysisTestUtil.h"
#include "../common/RandomProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>

using namespace syntox;
using namespace syntox::test;

namespace {

IterationStrategy strategyFor(uint64_t Seed) {
  switch (Seed % 3) {
  case 0:
    return IterationStrategy::Recursive;
  case 1:
    return IterationStrategy::Worklist;
  default:
    return IterationStrategy::Parallel;
  }
}

/// Every cone must be closed under graph predecessors: that closure is
/// the contract FixpointSolver::Options::DemandNodes relies on.
void expectPredClosed(const Digraph &G, const std::vector<uint8_t> &Cone) {
  for (unsigned V = 0; V < G.numNodes(); ++V) {
    if (!Cone[V])
      continue;
    for (unsigned P : G.preds(V))
      EXPECT_TRUE(Cone[P]) << "cone not closed: " << P << " feeds " << V;
  }
}

unsigned count(const std::vector<uint8_t> &Mask) {
  unsigned N = 0;
  for (uint8_t B : Mask)
    N += B != 0;
  return N;
}

//===----------------------------------------------------------------------===//
// Cone computation on hand-built dependency digraphs
//===----------------------------------------------------------------------===//

TEST(DependencyConeTest, ChainRootsAndInteriors) {
  Digraph G(4); // 0 -> 1 -> 2 -> 3
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);

  std::vector<uint8_t> Tail = Analyzer::dependencyCone(G, {3});
  EXPECT_EQ(count(Tail), 4u); // the far end demands the whole chain

  std::vector<uint8_t> Mid = Analyzer::dependencyCone(G, {1});
  EXPECT_EQ(count(Mid), 2u);
  EXPECT_TRUE(Mid[0] && Mid[1]);
  EXPECT_FALSE(Mid[2] || Mid[3]); // downstream of the query is not pulled

  std::vector<uint8_t> Root = Analyzer::dependencyCone(G, {0});
  EXPECT_EQ(count(Root), 1u);
  EXPECT_TRUE(Root[0]);
  expectPredClosed(G, Tail);
  expectPredClosed(G, Mid);
  expectPredClosed(G, Root);
}

TEST(DependencyConeTest, DiamondPullsBothArms) {
  Digraph G(4); // 0 -> {1, 2} -> 3
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);

  std::vector<uint8_t> Join = Analyzer::dependencyCone(G, {3});
  EXPECT_EQ(count(Join), 4u); // both arms feed the join

  std::vector<uint8_t> Arm = Analyzer::dependencyCone(G, {1});
  EXPECT_TRUE(Arm[0] && Arm[1]);
  EXPECT_FALSE(Arm[2] || Arm[3]); // the other arm stays out
  expectPredClosed(G, Join);
  expectPredClosed(G, Arm);
}

TEST(DependencyConeTest, CyclePullsWholeComponent) {
  Digraph G(5); // 0 -> (1 -> 2 -> 3 -> 1) -> 4
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1);
  G.addEdge(3, 4);

  // Querying any member of the cycle pulls the whole SCC plus its
  // feeders — the property that makes element-level demand flags exact.
  std::vector<uint8_t> C = Analyzer::dependencyCone(G, {2});
  EXPECT_TRUE(C[0] && C[1] && C[2] && C[3]);
  EXPECT_FALSE(C[4]);
  expectPredClosed(G, C);

  std::vector<uint8_t> After = Analyzer::dependencyCone(G, {4});
  EXPECT_EQ(count(After), 5u);
}

TEST(DependencyConeTest, DisconnectedRootsStayApart) {
  Digraph G(4); // 0 -> 1   2 -> 3  (two independent chains)
  G.addEdge(0, 1);
  G.addEdge(2, 3);

  std::vector<uint8_t> A = Analyzer::dependencyCone(G, {1});
  EXPECT_TRUE(A[0] && A[1]);
  EXPECT_FALSE(A[2] || A[3]);

  std::vector<uint8_t> Both = Analyzer::dependencyCone(G, {1, 3});
  EXPECT_EQ(count(Both), 4u);

  std::vector<uint8_t> None = Analyzer::dependencyCone(G, {});
  EXPECT_EQ(count(None), 0u);
}

TEST(DependencyConeTest, TokenUnfoldedCallGraphCones) {
  // A program with a procedure called from two sites: token unfolding
  // gives one callee instance per call chain, and the forward
  // dependency graph threads call/return links between them. The cone
  // primitive must respect those cross-instance edges.
  const char *Src = R"pas(
program calls;
var a, b : integer;

procedure bump(var x : integer);
begin
  x := x + 1
end;

begin
  a := 0;
  b := 10;
  bump(a);
  bump(b)
end.
)pas";
  AnalyzedProgram P = analyzeProgram(Src);
  ASSERT_NE(P.An, nullptr);
  const SuperGraph &G = P.An->graph();
  ASSERT_GE(G.instances().size(), 3u) << "expected two unfolded callees";

  Digraph Fwd = P.An->forwardDependencies();
  // The whole-program cone from the main exit covers the entry...
  std::vector<uint8_t> Exit =
      Analyzer::dependencyCone(Fwd, {G.mainExit()});
  EXPECT_TRUE(Exit[G.mainEntry()]);
  expectPredClosed(Fwd, Exit);

  // ...while the cone of a point *inside the first callee instance*
  // must contain that instance's entry but nothing from the second
  // call's instance (it executes later and cannot feed the first).
  const Instance &First = G.instances()[1];
  const Instance &Second = G.instances()[2];
  std::vector<uint8_t> Callee = Analyzer::dependencyCone(
      Fwd, {G.node(First, First.Cfg->numPoints() - 1)});
  expectPredClosed(Fwd, Callee);
  EXPECT_TRUE(Callee[G.node(First, 0)]);
  bool AnySecond = false;
  for (unsigned Pt = 0; Pt < Second.Cfg->numPoints(); ++Pt)
    AnySecond |= Callee[G.node(Second, Pt)] != 0;
  EXPECT_FALSE(AnySecond)
      << "cone of the first call leaked into the second call's instance";

  // Backward dependencies are the reverse: the cone of the *entry* in
  // the backward graph is the forward-reachable set.
  Digraph Bwd = P.An->backwardDependencies();
  std::vector<uint8_t> Entry =
      Analyzer::dependencyCone(Bwd, {G.mainEntry()});
  expectPredClosed(Bwd, Entry);
  EXPECT_TRUE(Entry[G.mainExit()]);
}

//===----------------------------------------------------------------------===//
// The 200-seed demand-vs-full differential battery
//===----------------------------------------------------------------------===//

TEST(DemandQueryTest, TwoHundredSeedsDemandEqualsFull) {
  // 200 random assertion-bearing programs; strategies cycle per seed,
  // warm states (cold / warm / cache-loaded) cycle independently. For
  // each, a single-node demand query must agree bitwise with the full
  // solve at every in-cone node, and the per-phase audit must show
  // zero live evaluations at every out-of-cone node.
  uint64_t TotalSkipped = 0, TotalDemanded = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ProgramGenerator Gen(Seed * 9973 + 17, /*WithAssertions=*/true);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    IterationStrategy S = strategyFor(Seed);
    unsigned Mode = (Seed / 3) % 3; // 0 cold, 1 warm, 2 cache-loaded
    AnalysisOptions Opts =
        withOptions()
            .strategy(S)
            .threads(S == IterationStrategy::Parallel ? 4 : 0)
            .backwardRounds(2);

    AnalyzedProgram P = analyzeProgram(Source, Opts);
    ASSERT_NE(P.An, nullptr);
    const StoreOps &Ops = P.An->storeOps();
    unsigned N = P.An->graph().numNodes();
    std::vector<unsigned> Query{static_cast<unsigned>((Seed * 131) % N)};

    // Same AST/CFG so StoreOps::equal compares the stores key-by-key.
    Analyzer Demand(*P.Cfg, P.FE.Program, Opts);
    namespace fs = std::filesystem;
    fs::path Dir;
    if (Mode == 1) {
      Demand.run(); // warm: a prior full run recorded every chain slot
    } else if (Mode == 2) {
      Dir = fs::temp_directory_path() /
            ("syntox_demand_test_" + std::to_string(Seed));
      fs::create_directories(Dir);
      ASSERT_TRUE(persist::saveWarmCache(Dir.string(), *P.An));
      persist::CacheLoadResult R =
          persist::loadWarmCache(Dir.string(), Demand);
      EXPECT_TRUE(R.Loaded) << R.FallbackReason;
    }
    Demand.runDemand(Query);
    if (!Dir.empty())
      fs::remove_all(Dir);

    const std::vector<uint8_t> &Mask = Demand.demandMask();
    ASSERT_EQ(Mask.size(), N);
    EXPECT_TRUE(Mask[Query[0]]) << "query node must be answerable";

    // Bitwise agreement at every answerable node, for both the pure
    // forward invariant and the refined envelope.
    for (unsigned Node = 0; Node < N; ++Node) {
      if (!Mask[Node])
        continue;
      EXPECT_TRUE(Ops.equal(Demand.forwardAt(Node), P.An->forwardAt(Node)))
          << "forward differs at node " << Node;
      EXPECT_TRUE(
          Ops.equal(Demand.envelopeAt(Node), P.An->envelopeAt(Node)))
          << "envelope differs at node " << Node;
    }

    // The zero-work guarantee, per phase and per node: nothing outside
    // a phase's cone was ever live-evaluated by that phase's solver.
    ASSERT_FALSE(Demand.demandAudit().empty());
    for (const Analyzer::DemandPhaseAudit &A : Demand.demandAudit()) {
      ASSERT_EQ(A.Mask.size(), N);
      ASSERT_EQ(A.NodeLiveSteps.size(), N);
      for (unsigned Node = 0; Node < N; ++Node) {
        if (!A.Mask[Node]) {
          EXPECT_EQ(A.NodeLiveSteps[Node], 0u)
              << "phase " << A.Phase << " live-evaluated out-of-cone node "
              << Node;
        }
      }
    }

    // Warm demand after an identical full run replays the whole cone:
    // zero live evaluations anywhere, the splice-everything extreme.
    if (Mode == 1) {
      uint64_t Live = 0;
      for (const Analyzer::DemandPhaseAudit &A : Demand.demandAudit())
        for (uint64_t Steps : A.NodeLiveSteps)
          Live += Steps;
      EXPECT_EQ(Live, 0u)
          << "warm demand run should replay every in-cone component";
    }

    TotalDemanded += Demand.stats().DemandedComponents;
    TotalSkipped += Demand.stats().SkippedByDemand;
  }
  // The battery as a whole must exercise both sides of the cone
  // boundary (individual seeds may demand everything).
  EXPECT_GT(TotalDemanded, 0u);
  EXPECT_GT(TotalSkipped, 0u);
}

TEST(DemandQueryTest, EditSequenceDemandStable) {
  // Edit sequences: each step mutates one literal of its predecessor.
  // The demand answer at the intermittent assertion must match the
  // full solve at every step of the sequence.
  for (uint64_t Seed : {3u, 11u, 42u}) {
    ProgramGenerator Gen(Seed * 7919, /*WithAssertions=*/true);
    for (const std::string &Source : Gen.editSequence(3)) {
      SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
      size_t Pos = Source.find("intermittent(");
      ASSERT_NE(Pos, std::string::npos);
      uint32_t Line = 1 + static_cast<uint32_t>(
                              std::count(Source.begin(), Source.end(), '\n') -
                              std::count(Source.begin() + Pos, Source.end(),
                                         '\n'));
      SourceLoc Loc(Line, 0);

      DiagnosticsEngine Diags;
      auto Session = AnalysisSession::create(
          Source, Diags, withOptions().strategy(strategyFor(Seed)));
      ASSERT_NE(Session, nullptr) << Diags.str();
      AnalysisResult Full = Session->run();
      DemandResult Partial = Session->demandStateAt(Loc);
      EXPECT_TRUE(Partial.covers(Loc));

      std::vector<PointState> Want = Full.stateAt(Loc);
      const std::vector<PointState> &Got = Partial.states();
      ASSERT_EQ(Got.size(), Want.size());
      for (size_t I = 0; I < Want.size(); ++I)
        EXPECT_TRUE(Got[I].toJson() == Want[I].toJson())
            << "state differs at " << Want[I].PointDesc;
    }
  }
}

//===----------------------------------------------------------------------===//
// Check queries
//===----------------------------------------------------------------------===//

TEST(DemandQueryTest, DemandCheckMatchesFullClassification) {
  // The paper's For program: one array-bound check whose full-table
  // classification the demand query must reproduce exactly.
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(paper::ForProgram, Diags);
  ASSERT_NE(Session, nullptr) << Diags.str();
  AnalysisResult Full = Session->run();
  ASSERT_FALSE(Full.checks().results().empty());
  const IntervalDomain &D = Full.analyzer().storeOps().domain();

  for (const CheckResult &Want : Full.checks().results()) {
    DemandResult R = Session->demandCheck(Want.Info->Id);
    ASSERT_NE(R.check(), nullptr);
    EXPECT_EQ(R.check()->Verdict, Want.Verdict);
    EXPECT_EQ(R.check()->str(D), Want.str(D));
    EXPECT_TRUE(R.states().empty());
    // A check query solves a strict subset: the check's cone plus
    // nothing downstream of it.
    EXPECT_GT(R.stats().DemandedComponents, 0u);
  }

  EXPECT_THROW(Session->demandCheck(12345), std::out_of_range);
}

//===----------------------------------------------------------------------===//
// API compatibility: pre-run and out-of-cone behavior
//===----------------------------------------------------------------------===//

TEST(DemandApiCompatTest, PreRunQueriesThrowLogicErrorOnBothPaths) {
  // The deprecated AbstractDebugger path: before analyze(), stateAt()
  // throws std::logic_error — and the new demand entry points must
  // behave exactly the same before analyzeDemand().
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(paper::ForProgram, Diags);
  ASSERT_NE(Dbg, nullptr) << Diags.str();

  EXPECT_THROW(Dbg->stateAt(SourceLoc(5, 0)), std::logic_error);
  EXPECT_THROW(Dbg->conditions(), std::logic_error);
  EXPECT_THROW(Dbg->demandStateAt(SourceLoc(5, 0)), std::logic_error);
  EXPECT_THROW(Dbg->demandCovers(SourceLoc(5, 0)), std::logic_error);
  EXPECT_THROW(Dbg->demandCheck(0), std::logic_error);
  EXPECT_THROW(Dbg->demandConditions(), std::logic_error);
  EXPECT_THROW(Dbg->demandInvariantWarnings(), std::logic_error);
  EXPECT_THROW(Dbg->stats(), std::logic_error);

  // After a demand run the demand queries answer, while the
  // full-analysis queries still require analyze() — a partial solve
  // must never satisfy the full-result guard.
  Dbg->analyzeDemand(DemandSpec::point(SourceLoc(5, 0)));
  EXPECT_NO_THROW(Dbg->demandStateAt(SourceLoc(5, 0)));
  EXPECT_NO_THROW(Dbg->stats());
  EXPECT_THROW(Dbg->stateAt(SourceLoc(5, 0)), std::logic_error);
  EXPECT_THROW(Dbg->conditions(), std::logic_error);
  EXPECT_THROW(Dbg->checks(), std::logic_error);
}

TEST(DemandApiCompatTest, FullThenDemandIsRefused) {
  // A demand run would overwrite the published full-analysis state, so
  // it is refused on an analyzed debugger (the session API always uses
  // a fresh engine per query).
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(paper::ForProgram, Diags);
  ASSERT_NE(Dbg, nullptr) << Diags.str();
  Dbg->analyze();
  EXPECT_THROW(Dbg->analyzeDemand(DemandSpec::point(SourceLoc(5, 0))),
               std::logic_error);
  // analyze() results stay live and queryable.
  EXPECT_NO_THROW(Dbg->stateAt(SourceLoc(5, 0)));
}

TEST(DemandApiCompatTest, OutOfConeQueriesAreRefused) {
  const char *Src = R"pas(
program straight;
var a, b : integer;
begin
  a := 1;
  b := a + 1;
  writeln(a, b)
end.
)pas";
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Src, Diags);
  ASSERT_NE(Session, nullptr) << Diags.str();

  // The cone of line 5 (a := 1) excludes everything downstream: the
  // point after line 6's assignment is outside, and querying it must
  // refuse instead of reading the unspecified out-of-cone stores.
  DemandResult R = Session->demandStateAt(SourceLoc(5, 0));
  EXPECT_FALSE(R.states().empty());
  EXPECT_TRUE(R.covers(SourceLoc(5, 0)));
  EXPECT_FALSE(R.covers(SourceLoc(6, 0)));
  EXPECT_THROW(R.stateAt(SourceLoc(6, 0)), std::out_of_range);
  EXPECT_NO_THROW(R.stateAt(SourceLoc(5, 0)));
  // A location matching no control point at all answers empty, exactly
  // like the full-solve stateAt contract.
  EXPECT_TRUE(R.covers(SourceLoc(99, 0)));
  EXPECT_TRUE(R.stateAt(SourceLoc(99, 0)).empty());

  // A full-solve answer for the same point matches the demand answer.
  AnalysisResult Full = Session->run();
  std::vector<PointState> Want = Full.stateAt(SourceLoc(5, 0));
  ASSERT_EQ(R.states().size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_TRUE(R.states()[I].toJson() == Want[I].toJson());
}

TEST(DemandApiCompatTest, DemandResultJsonShape) {
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(paper::ForProgram, Diags);
  ASSERT_NE(Session, nullptr) << Diags.str();
  DemandResult R = Session->demandStateAt(SourceLoc(5, 0));
  json::Value Doc = R.toJson();
  EXPECT_NE(Doc.find("query"), nullptr);
  EXPECT_NE(Doc.find("states"), nullptr);
  EXPECT_NE(Doc.find("conditions"), nullptr);
  EXPECT_NE(Doc.find("invariant_warnings"), nullptr);
  EXPECT_NE(Doc.find("stats"), nullptr);
  EXPECT_NE(Doc.find("metrics"), nullptr);
  EXPECT_EQ(Doc.find("check"), nullptr);
  // The cone accounting is part of the stats document.
  ASSERT_NE(Doc.find("stats"), nullptr);
  EXPECT_NE(Doc.find("stats")->find("demanded_components"), nullptr);
  EXPECT_NE(Doc.find("stats")->find("skipped_by_demand"), nullptr);
}

} // namespace
