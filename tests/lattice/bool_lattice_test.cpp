//===- tests/lattice/bool_lattice_test.cpp - BoolLattice unit tests -------===//

#include "lattice/BoolLattice.h"

#include <gtest/gtest.h>

#include <vector>

using namespace syntox;

namespace {

std::vector<BoolLattice> allValues() {
  return {BoolLattice::bottom(), BoolLattice(false), BoolLattice(true),
          BoolLattice::top()};
}

TEST(BoolLatticeTest, Basics) {
  EXPECT_TRUE(BoolLattice::bottom().isBottom());
  EXPECT_TRUE(BoolLattice::top().isTop());
  EXPECT_TRUE(BoolLattice(true).mayBeTrue());
  EXPECT_FALSE(BoolLattice(true).mayBeFalse());
  EXPECT_TRUE(BoolLattice(false).mayBeFalse());
  EXPECT_FALSE(BoolLattice(false).mayBeTrue());
  EXPECT_TRUE(BoolLattice::top().mayBeTrue());
  EXPECT_TRUE(BoolLattice::top().mayBeFalse());
  EXPECT_TRUE(BoolLattice(true).isConstant());
  EXPECT_TRUE(BoolLattice(true).constantValue());
  EXPECT_FALSE(BoolLattice(false).constantValue());
  EXPECT_FALSE(BoolLattice::top().isConstant());
}

TEST(BoolLatticeTest, LatticeLaws) {
  for (BoolLattice X : allValues()) {
    EXPECT_TRUE(BoolLattice::bottom().leq(X));
    EXPECT_TRUE(X.leq(BoolLattice::top()));
    EXPECT_EQ(X.join(X), X);
    EXPECT_EQ(X.meet(X), X);
    for (BoolLattice Y : allValues()) {
      EXPECT_EQ(X.join(Y), Y.join(X));
      EXPECT_EQ(X.meet(Y), Y.meet(X));
      EXPECT_TRUE(X.leq(X.join(Y)));
      EXPECT_TRUE(X.meet(Y).leq(X));
      EXPECT_EQ(X.leq(Y), X.join(Y) == Y);
    }
  }
}

TEST(BoolLatticeTest, KleeneLogic) {
  BoolLattice T(true), F(false), U = BoolLattice::top();
  EXPECT_EQ(T.logicalNot(), F);
  EXPECT_EQ(F.logicalNot(), T);
  EXPECT_EQ(U.logicalNot(), U);
  EXPECT_TRUE(BoolLattice::bottom().logicalNot().isBottom());

  // False annihilates AND even against unknown.
  EXPECT_EQ(F.logicalAnd(U), F);
  EXPECT_EQ(U.logicalAnd(F), F);
  EXPECT_EQ(T.logicalAnd(T), T);
  EXPECT_EQ(T.logicalAnd(U), U);
  EXPECT_TRUE(T.logicalAnd(BoolLattice::bottom()).isBottom());

  // True annihilates OR.
  EXPECT_EQ(T.logicalOr(U), T);
  EXPECT_EQ(U.logicalOr(T), T);
  EXPECT_EQ(F.logicalOr(F), F);
  EXPECT_EQ(F.logicalOr(U), U);
}

TEST(BoolLatticeTest, KleeneSoundness) {
  // Exhaustive: the abstract connectives cover every concretization.
  auto Gamma = [](BoolLattice X) {
    std::vector<bool> Out;
    if (X.mayBeFalse())
      Out.push_back(false);
    if (X.mayBeTrue())
      Out.push_back(true);
    return Out;
  };
  for (BoolLattice X : allValues())
    for (BoolLattice Y : allValues()) {
      BoolLattice And = X.logicalAnd(Y), Or = X.logicalOr(Y);
      for (bool A : Gamma(X))
        for (bool B : Gamma(Y)) {
          EXPECT_TRUE((A && B) ? And.mayBeTrue() : And.mayBeFalse());
          EXPECT_TRUE((A || B) ? Or.mayBeTrue() : Or.mayBeFalse());
        }
    }
}

TEST(BoolLatticeTest, Str) {
  EXPECT_EQ(BoolLattice(true).str(), "true");
  EXPECT_EQ(BoolLattice(false).str(), "false");
  EXPECT_EQ(BoolLattice::top().str(), "T");
  EXPECT_EQ(BoolLattice::bottom().str(), "_|_");
}

} // namespace
