//===- tests/lattice/interval_property_test.cpp - Exhaustive sweeps -------===//
//
// Property tests for the interval domain, checked *exhaustively* against a
// tiny Z_b = [-6, 5]: lattice laws, widening termination, narrowing
// soundness, and — crucially for abstract debugging — soundness of every
// forward and backward operator with respect to the concrete (saturating)
// semantics.
//
//===----------------------------------------------------------------------===//

#include "lattice/Interval.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

using namespace syntox;

namespace {

constexpr int64_t TinyMin = -6;
constexpr int64_t TinyMax = 5;

/// Enumerates every interval of the tiny domain, bottom included.
std::vector<Interval> allIntervals() {
  std::vector<Interval> Out;
  Out.push_back(Interval::bottom());
  for (int64_t Lo = TinyMin; Lo <= TinyMax; ++Lo)
    for (int64_t Hi = Lo; Hi <= TinyMax; ++Hi)
      Out.push_back(Interval(Lo, Hi));
  return Out;
}

int64_t clampTiny(__int128 V) {
  if (V < TinyMin)
    return TinyMin;
  if (V > TinyMax)
    return TinyMax;
  return static_cast<int64_t>(V);
}

/// Concrete saturating semantics matching the abstract domain (division and
/// modulo are partial: nullopt when the divisor is zero).
std::optional<int64_t> concreteOp(int Op, int64_t A, int64_t B) {
  switch (Op) {
  case 0:
    return clampTiny(static_cast<__int128>(A) + B);
  case 1:
    return clampTiny(static_cast<__int128>(A) - B);
  case 2:
    return clampTiny(static_cast<__int128>(A) * B);
  case 3:
    if (B == 0)
      return std::nullopt;
    return clampTiny(static_cast<__int128>(A) / B);
  case 4:
    if (B == 0)
      return std::nullopt;
    return clampTiny(static_cast<__int128>(A) % B);
  }
  return std::nullopt;
}

class IntervalExhaustiveTest : public ::testing::TestWithParam<int> {
protected:
  IntervalDomain D{TinyMin, TinyMax};
  std::vector<Interval> All = allIntervals();

  Interval fwd(int Op, const Interval &A, const Interval &B) {
    switch (Op) {
    case 0:
      return D.add(A, B);
    case 1:
      return D.sub(A, B);
    case 2:
      return D.mul(A, B);
    case 3:
      return D.div(A, B);
    case 4:
      return D.mod(A, B);
    }
    return D.top();
  }

  std::pair<Interval, Interval> bwd(int Op, const Interval &R,
                                    const Interval &A, const Interval &B) {
    switch (Op) {
    case 0:
      return D.bwdAdd(R, A, B);
    case 1:
      return D.bwdSub(R, A, B);
    case 2:
      return D.bwdMul(R, A, B);
    case 3:
      return D.bwdDiv(R, A, B);
    case 4:
      return D.bwdMod(R, A, B);
    }
    return {A, B};
  }
};

/// Forward soundness: for all a in A, b in B, op(a,b) in fwd(A,B).
TEST_P(IntervalExhaustiveTest, ForwardOpIsSound) {
  int Op = GetParam();
  for (const Interval &A : All) {
    for (const Interval &B : All) {
      Interval R = fwd(Op, A, B);
      for (int64_t X = A.Lo; X <= A.Hi; ++X) {
        for (int64_t Y = B.Lo; Y <= B.Hi; ++Y) {
          std::optional<int64_t> C = concreteOp(Op, X, Y);
          if (!C)
            continue;
          ASSERT_TRUE(R.contains(*C))
              << "op=" << Op << " " << X << "," << Y << " -> " << *C
              << " not in " << R.str() << " from " << A.str() << " x "
              << B.str();
        }
      }
    }
  }
}

/// Backward soundness: if op(a,b) in R then (a,b) survives bwd refinement.
TEST_P(IntervalExhaustiveTest, BackwardOpIsSound) {
  int Op = GetParam();
  for (const Interval &R : All) {
    if (R.isBottom())
      continue;
    for (const Interval &A : All) {
      for (const Interval &B : All) {
        auto [NewA, NewB] = bwd(Op, R, A, B);
        ASSERT_TRUE(D.leq(NewA, A)) << "refinement must not grow A";
        ASSERT_TRUE(D.leq(NewB, B)) << "refinement must not grow B";
        for (int64_t X = A.Lo; X <= A.Hi; ++X) {
          for (int64_t Y = B.Lo; Y <= B.Hi; ++Y) {
            std::optional<int64_t> C = concreteOp(Op, X, Y);
            if (!C || !R.contains(*C))
              continue;
            ASSERT_TRUE(NewA.contains(X) && NewB.contains(Y))
                << "op=" << Op << " (" << X << "," << Y << ") -> " << *C
                << " in R=" << R.str() << " lost: A=" << A.str() << "->"
                << NewA.str() << " B=" << B.str() << "->" << NewB.str();
          }
        }
      }
    }
  }
}

std::string binaryOpName(const ::testing::TestParamInfo<int> &Info) {
  static const char *const Names[] = {"Add", "Sub", "Mul", "Div", "Mod"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, IntervalExhaustiveTest,
                         ::testing::Values(0, 1, 2, 3, 4), binaryOpName);

//===----------------------------------------------------------------------===//
// Unary operators
//===----------------------------------------------------------------------===//

TEST(IntervalExhaustiveUnary, NegAbsSqrSoundness) {
  IntervalDomain D(TinyMin, TinyMax);
  for (const Interval &A : allIntervals()) {
    Interval N = D.neg(A), Ab = D.abs(A), Sq = D.sqr(A);
    for (int64_t X = A.Lo; X <= A.Hi; ++X) {
      EXPECT_TRUE(N.contains(clampTiny(-static_cast<__int128>(X))));
      EXPECT_TRUE(Ab.contains(clampTiny(X < 0 ? -static_cast<__int128>(X)
                                              : static_cast<__int128>(X))));
      EXPECT_TRUE(Sq.contains(clampTiny(static_cast<__int128>(X) * X)));
    }
  }
}

TEST(IntervalExhaustiveUnary, BackwardNegAbsSqrSoundness) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  for (const Interval &R : All) {
    if (R.isBottom())
      continue;
    for (const Interval &A : All) {
      Interval NN = D.bwdNeg(R, A), NA = D.bwdAbs(R, A), NS = D.bwdSqr(R, A);
      EXPECT_TRUE(D.leq(NN, A));
      EXPECT_TRUE(D.leq(NA, A));
      EXPECT_TRUE(D.leq(NS, A));
      for (int64_t X = A.Lo; X <= A.Hi; ++X) {
        if (R.contains(clampTiny(-static_cast<__int128>(X)))) {
          EXPECT_TRUE(NN.contains(X)) << "bwdNeg lost " << X;
        }
        int64_t AbsX = clampTiny(X < 0 ? -static_cast<__int128>(X)
                                       : static_cast<__int128>(X));
        if (R.contains(AbsX)) {
          EXPECT_TRUE(NA.contains(X)) << "bwdAbs lost " << X;
        }
        if (R.contains(clampTiny(static_cast<__int128>(X) * X))) {
          EXPECT_TRUE(NS.contains(X)) << "bwdSqr lost " << X;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Lattice laws
//===----------------------------------------------------------------------===//

TEST(IntervalLatticeLaws, JoinMeetLaws) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  for (const Interval &X : All) {
    EXPECT_EQ(D.join(X, X), X) << "join idempotent";
    EXPECT_EQ(D.meet(X, X), X) << "meet idempotent";
    EXPECT_EQ(D.join(X, D.bottom()), X);
    EXPECT_EQ(D.meet(X, D.top()), X);
    for (const Interval &Y : All) {
      EXPECT_EQ(D.join(X, Y), D.join(Y, X)) << "join commutative";
      EXPECT_EQ(D.meet(X, Y), D.meet(Y, X)) << "meet commutative";
      EXPECT_TRUE(D.leq(X, D.join(X, Y))) << "join is an upper bound";
      EXPECT_TRUE(D.leq(D.meet(X, Y), X)) << "meet is a lower bound";
      EXPECT_EQ(D.meet(X, D.join(X, Y)), X) << "absorption";
      // Connection between order and join.
      EXPECT_EQ(D.leq(X, Y), D.join(X, Y) == Y);
    }
  }
}

TEST(IntervalLatticeLaws, JoinMeetAssociative) {
  IntervalDomain D(-3, 3); // smaller: triples are cubic
  std::vector<Interval> All;
  All.push_back(Interval::bottom());
  for (int64_t Lo = -3; Lo <= 3; ++Lo)
    for (int64_t Hi = Lo; Hi <= 3; ++Hi)
      All.push_back(Interval(Lo, Hi));
  for (const Interval &X : All)
    for (const Interval &Y : All)
      for (const Interval &Z : All) {
        EXPECT_EQ(D.join(D.join(X, Y), Z), D.join(X, D.join(Y, Z)));
        EXPECT_EQ(D.meet(D.meet(X, Y), Z), D.meet(X, D.meet(Y, Z)));
      }
}

TEST(IntervalLatticeLaws, WideningIsUpperBound) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  for (const Interval &X : All)
    for (const Interval &Y : All) {
      Interval W = D.widen(X, Y);
      EXPECT_TRUE(D.leq(X, W)) << "x <= x V y";
      EXPECT_TRUE(D.leq(Y, W)) << "y <= x V y";
      EXPECT_TRUE(D.leq(D.join(X, Y), W)) << "x U y <= x V y";
    }
}

/// The paper §6.1 remark: the widening stabilizes any increasing chain in
/// at most four distinct values (bottom, a finite interval, one bound at
/// omega, both bounds at omega).
TEST(IntervalLatticeLaws, WideningChainsStabilizeInFourSteps) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  // Drive the chain x_{i+1} = x_i V y_i with every pair sequence of length
  // up to 3 starting from bottom; count distinct chain values.
  for (const Interval &Y0 : All)
    for (const Interval &Y1 : All)
      for (const Interval &Y2 : All) {
        Interval X = Interval::bottom();
        int Changes = 0;
        for (const Interval *Y : {&Y0, &Y1, &Y2, &Y0, &Y1, &Y2}) {
          Interval Next = D.widen(X, *Y);
          if (!(Next == X))
            ++Changes;
          X = Next;
        }
        EXPECT_LE(Changes, 3) << "at most 4 distinct values incl. bottom";
      }
}

TEST(IntervalLatticeLaws, NarrowingSoundOnDecreasingPairs) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  for (const Interval &X : All)
    for (const Interval &Y : All) {
      if (!D.leq(Y, X))
        continue; // narrowing contract only applies to decreasing chains
      Interval N = D.narrow(X, Y);
      EXPECT_TRUE(D.leq(Y, N)) << "y <= x A y (does not lose y)";
      EXPECT_TRUE(D.leq(N, X)) << "x A y <= x (refines x)";
    }
}

TEST(IntervalLatticeLaws, NarrowingChainsStabilize) {
  IntervalDomain D(TinyMin, TinyMax);
  // Repeatedly narrowing with the same value is stationary after one step.
  std::vector<Interval> All = allIntervals();
  for (const Interval &X : All)
    for (const Interval &Y : All) {
      if (!D.leq(Y, X))
        continue;
      Interval N1 = D.narrow(X, Y);
      Interval N2 = D.narrow(N1, Y);
      EXPECT_EQ(N1, N2);
    }
}

TEST(IntervalLatticeLaws, ThresholdWideningIsAWidening) {
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<int64_t> Thresholds = {-4, 0, 2};
  std::vector<Interval> All = allIntervals();
  for (const Interval &X : All)
    for (const Interval &Y : All) {
      Interval W = D.widenWithThresholds(X, Y, Thresholds);
      EXPECT_TRUE(D.leq(D.join(X, Y), W));
      // Stricter than the standard widening (never coarser).
      EXPECT_TRUE(D.leq(W, D.widen(X, Y)));
    }
}

//===----------------------------------------------------------------------===//
// Comparison assumption soundness
//===----------------------------------------------------------------------===//

bool concreteCmp(CmpOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case CmpOp::EQ:
    return A == B;
  case CmpOp::NE:
    return A != B;
  case CmpOp::LT:
    return A < B;
  case CmpOp::LE:
    return A <= B;
  case CmpOp::GT:
    return A > B;
  case CmpOp::GE:
    return A >= B;
  }
  return false;
}

class CmpExhaustiveTest : public ::testing::TestWithParam<CmpOp> {};

TEST_P(CmpExhaustiveTest, AssumeCmpSound) {
  CmpOp Op = GetParam();
  IntervalDomain D(TinyMin, TinyMax);
  std::vector<Interval> All = allIntervals();
  for (const Interval &A : All) {
    for (const Interval &B : All) {
      auto [NewA, NewB] = D.assumeCmp(Op, A, B);
      EXPECT_TRUE(D.leq(NewA, A));
      EXPECT_TRUE(D.leq(NewB, B));
      bool AnyTrue = false;
      for (int64_t X = A.Lo; X <= A.Hi; ++X)
        for (int64_t Y = B.Lo; Y <= B.Hi; ++Y) {
          if (!concreteCmp(Op, X, Y))
            continue;
          AnyTrue = true;
          EXPECT_TRUE(NewA.contains(X) && NewB.contains(Y))
              << cmpOpName(Op) << " lost (" << X << "," << Y << ") from "
              << A.str() << " x " << B.str();
        }
      EXPECT_EQ(AnyTrue, D.cmpMayBeTrue(Op, A, B))
          << cmpOpName(Op) << " on " << A.str() << " x " << B.str();
      if (!AnyTrue) {
        EXPECT_TRUE(NewA.isBottom());
        EXPECT_TRUE(NewB.isBottom());
      }
    }
  }
}

std::string cmpParamName(const ::testing::TestParamInfo<CmpOp> &Info) {
  switch (Info.param) {
  case CmpOp::EQ:
    return "EQ";
  case CmpOp::NE:
    return "NE";
  case CmpOp::LT:
    return "LT";
  case CmpOp::LE:
    return "LE";
  case CmpOp::GT:
    return "GT";
  case CmpOp::GE:
    return "GE";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(AllCmpOps, CmpExhaustiveTest,
                         ::testing::Values(CmpOp::EQ, CmpOp::NE, CmpOp::LT,
                                           CmpOp::LE, CmpOp::GT, CmpOp::GE),
                         cmpParamName);

//===----------------------------------------------------------------------===//
// Interval hashing (the transfer-cache key primitive).
//===----------------------------------------------------------------------===//

TEST(IntervalHash, EqualIntervalsHashEqual) {
  for (const Interval &A : allIntervals())
    for (const Interval &B : allIntervals())
      if (A == B) {
        EXPECT_EQ(hashValue(A), hashValue(B));
      }
}

TEST(IntervalHash, TinyDomainIsCollisionFree) {
  // Nothing forces a 64-bit hash to be injective, but over the 79
  // intervals of the tiny domain any collision would be a red flag for
  // the mixing function (the cache would degrade to equality scans).
  std::vector<Interval> All = allIntervals();
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      EXPECT_NE(hashValue(All[I]), hashValue(All[J]))
          << All[I].str() << " vs " << All[J].str();
}

TEST(IntervalHash, BottomIsCanonical) {
  // Every bottom representation must collapse to one hash: stores
  // canonicalize bottom, and the hash must not depend on stale bounds.
  EXPECT_EQ(hashValue(Interval::bottom()), hashValue(Interval::bottom()));
  EXPECT_NE(hashValue(Interval::bottom()),
            hashValue(Interval(INT64_MIN, INT64_MAX)));
}

TEST(IntervalHash, SensitiveToEachBound) {
  // Moving either endpoint alone must change the hash (these are the
  // exact deltas widening and narrowing produce).
  EXPECT_NE(hashValue(Interval(0, 5)), hashValue(Interval(0, 6)));
  EXPECT_NE(hashValue(Interval(0, 5)), hashValue(Interval(-1, 5)));
  EXPECT_NE(hashValue(Interval(0, 5)), hashValue(Interval(0, INT64_MAX)));
  EXPECT_NE(hashValue(Interval(0, INT64_MAX)),
            hashValue(Interval(INT64_MIN, INT64_MAX)));
  // Swapped bounds are distinct intervals, not a symmetric-hash alias.
  EXPECT_NE(hashValue(Interval(1, 2)), hashValue(Interval(2, 3)));
}

} // namespace
