//===- tests/lattice/interval_test.cpp - Interval domain unit tests -------===//
//
// Unit tests for the interval lattice of paper §6.1: lattice structure,
// the widening/narrowing operators, forward arithmetic and comparison
// tests. Exhaustive property sweeps live in interval_property_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "lattice/Interval.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

class IntervalTest : public ::testing::Test {
protected:
  IntervalDomain D; // full 64-bit Z_b
};

TEST_F(IntervalTest, BottomBasics) {
  Interval B = Interval::bottom();
  EXPECT_TRUE(B.isBottom());
  EXPECT_FALSE(B.contains(0));
  EXPECT_EQ(B, D.bottom());
  EXPECT_TRUE(D.leq(B, B));
  EXPECT_TRUE(D.leq(B, D.top()));
  EXPECT_FALSE(D.leq(D.top(), B));
}

TEST_F(IntervalTest, TopBasics) {
  Interval T = D.top();
  EXPECT_FALSE(T.isBottom());
  EXPECT_TRUE(D.isTop(T));
  EXPECT_TRUE(T.contains(0));
  EXPECT_TRUE(T.contains(INT64_MIN));
  EXPECT_TRUE(T.contains(INT64_MAX));
}

TEST_F(IntervalTest, MakeClampsToDomain) {
  IntervalDomain Small(-8, 7);
  EXPECT_EQ(Small.make(-100, 100), Interval(-8, 7));
  EXPECT_TRUE(Small.make(10, 20).isBottom());
  EXPECT_TRUE(Small.make(5, 3).isBottom());
  EXPECT_EQ(Small.make(0, 3), Interval(0, 3));
}

TEST_F(IntervalTest, JoinMeet) {
  Interval A(0, 5), B(3, 10);
  EXPECT_EQ(D.join(A, B), Interval(0, 10));
  EXPECT_EQ(D.meet(A, B), Interval(3, 5));
  Interval C(7, 9);
  EXPECT_TRUE(D.meet(A, C).isBottom());
  // Interval join over-approximates a disjoint union (convex hull).
  EXPECT_EQ(D.join(A, C), Interval(0, 9));
}

TEST_F(IntervalTest, LeqIsPartialOrder) {
  Interval A(1, 3), B(0, 5);
  EXPECT_TRUE(D.leq(A, B));
  EXPECT_FALSE(D.leq(B, A));
  EXPECT_TRUE(D.leq(A, A));
  EXPECT_FALSE(D.leq(Interval(0, 3), Interval(1, 5)));
}

TEST_F(IntervalTest, SingletonHelpers) {
  Interval S = Interval::singleton(42);
  EXPECT_TRUE(S.isSingleton());
  EXPECT_TRUE(S.contains(42));
  EXPECT_FALSE(S.contains(41));
}

//===----------------------------------------------------------------------===//
// Widening / narrowing (§6.1)
//===----------------------------------------------------------------------===//

TEST_F(IntervalTest, WideningBottomIsIdentity) {
  Interval X(2, 4);
  EXPECT_EQ(D.widen(Interval::bottom(), X), X);
  EXPECT_EQ(D.widen(X, Interval::bottom()), X);
}

TEST_F(IntervalTest, WideningUnstableBoundsJumpToOmega) {
  // [0,0] V [0,1]: upper bound unstable -> jumps to w+.
  Interval W = D.widen(Interval(0, 0), Interval(0, 1));
  EXPECT_EQ(W, Interval(0, INT64_MAX));
  // [0,5] V [-1,5]: lower bound unstable -> jumps to w-.
  W = D.widen(Interval(0, 5), Interval(-1, 5));
  EXPECT_EQ(W, Interval(INT64_MIN, 5));
  // Stable bounds stay.
  W = D.widen(Interval(0, 5), Interval(1, 4));
  EXPECT_EQ(W, Interval(0, 5));
}

TEST_F(IntervalTest, Paper61WideningNarrowingSequence) {
  // Paper §6.1, the X2 iterates for program Intermittent:
  //   widening phase: _|_, [0,0], [0,0] V ([0,0] U [1,1]) = [0,w+]
  //   narrowing phase: [0,w+] A ([0,0] U [0,100]) = [0,100]
  Interval X = Interval::bottom();
  X = D.widen(X, Interval(0, 0));
  EXPECT_EQ(X, Interval(0, 0));
  Interval Step = D.join(Interval(0, 0), Interval(1, 1));
  X = D.widen(X, Step);
  EXPECT_EQ(X, Interval(0, INT64_MAX));
  Interval Narrowed = D.narrow(X, D.join(Interval(0, 0), Interval(0, 100)));
  EXPECT_EQ(Narrowed, Interval(0, 100));
}

TEST_F(IntervalTest, NarrowingOnlyRefinesOmegaBounds) {
  // A finite bound is never "improved" by narrowing (paper definition).
  Interval X(0, 100); // no bound at w-/w+
  Interval Y(10, 50);
  EXPECT_EQ(D.narrow(X, Y), Interval(0, 100));
  // An upper bound at w+ is replaced.
  Interval Z(0, INT64_MAX);
  EXPECT_EQ(D.narrow(Z, Y), Interval(0, 50));
  // A lower bound at w- is replaced.
  Interval W(INT64_MIN, 100);
  EXPECT_EQ(D.narrow(W, Y), Interval(10, 100));
}

TEST_F(IntervalTest, NarrowingWithBottomIsBottom) {
  EXPECT_TRUE(D.narrow(Interval::bottom(), Interval(0, 1)).isBottom());
  EXPECT_TRUE(D.narrow(Interval(0, 1), Interval::bottom()).isBottom());
}

TEST_F(IntervalTest, ThresholdWideningJumpsToNearestThreshold) {
  std::vector<int64_t> Thresholds = {-100, 0, 10, 100};
  // Upper bound unstable: jumps to the smallest threshold >= new bound.
  Interval W =
      D.widenWithThresholds(Interval(0, 5), Interval(0, 7), Thresholds);
  EXPECT_EQ(W, Interval(0, 10));
  W = D.widenWithThresholds(Interval(0, 5), Interval(0, 50), Thresholds);
  EXPECT_EQ(W, Interval(0, 100));
  // Beyond every threshold: jumps to w+.
  W = D.widenWithThresholds(Interval(0, 5), Interval(0, 5000), Thresholds);
  EXPECT_EQ(W, Interval(0, INT64_MAX));
  // Lower bound unstable: largest threshold <= new bound.
  W = D.widenWithThresholds(Interval(0, 5), Interval(-20, 5), Thresholds);
  EXPECT_EQ(W, Interval(-100, 5));
}

//===----------------------------------------------------------------------===//
// Forward arithmetic
//===----------------------------------------------------------------------===//

TEST_F(IntervalTest, Add) {
  EXPECT_EQ(D.add(Interval(1, 2), Interval(10, 20)), Interval(11, 22));
  EXPECT_TRUE(D.add(Interval::bottom(), Interval(0, 1)).isBottom());
}

TEST_F(IntervalTest, AddSaturates) {
  Interval R = D.add(Interval(INT64_MAX - 1, INT64_MAX), Interval(10, 20));
  EXPECT_EQ(R, Interval(INT64_MAX, INT64_MAX));
}

TEST_F(IntervalTest, Sub) {
  EXPECT_EQ(D.sub(Interval(1, 2), Interval(10, 20)), Interval(-19, -8));
}

TEST_F(IntervalTest, MulSignCombinations) {
  EXPECT_EQ(D.mul(Interval(2, 3), Interval(4, 5)), Interval(8, 15));
  EXPECT_EQ(D.mul(Interval(-3, -2), Interval(4, 5)), Interval(-15, -8));
  EXPECT_EQ(D.mul(Interval(-2, 3), Interval(-5, 4)), Interval(-15, 12));
  EXPECT_EQ(D.mul(Interval(0, 0), D.top()), Interval(0, 0));
}

TEST_F(IntervalTest, DivExcludesZeroDivisor) {
  // Divisor {0}: no execution survives.
  EXPECT_TRUE(D.div(Interval(1, 10), Interval(0, 0)).isBottom());
  // Divisor straddling zero: both halves considered.
  EXPECT_EQ(D.div(Interval(10, 10), Interval(-2, 2)), Interval(-10, 10));
  EXPECT_EQ(D.div(Interval(10, 20), Interval(2, 5)), Interval(2, 10));
  EXPECT_EQ(D.div(Interval(-7, 7), Interval(2, 2)), Interval(-3, 3));
}

TEST_F(IntervalTest, DivTruncatesTowardZero) {
  EXPECT_EQ(D.div(Interval(-7, -7), Interval(2, 2)), Interval(-3, -3));
  EXPECT_EQ(D.div(Interval(7, 7), Interval(-2, -2)), Interval(-3, -3));
}

TEST_F(IntervalTest, ModSignOfDividend) {
  EXPECT_EQ(D.mod(Interval(0, 100), Interval(10, 10)), Interval(0, 9));
  EXPECT_EQ(D.mod(Interval(-100, 0), Interval(10, 10)), Interval(-9, 0));
  EXPECT_EQ(D.mod(Interval(-100, 100), Interval(10, 10)), Interval(-9, 9));
  // Small dividend bounds the result tighter than the divisor.
  EXPECT_EQ(D.mod(Interval(0, 3), Interval(10, 10)), Interval(0, 3));
  EXPECT_TRUE(D.mod(Interval(1, 2), Interval(0, 0)).isBottom());
}

TEST_F(IntervalTest, NegAbsSqr) {
  EXPECT_EQ(D.neg(Interval(-3, 5)), Interval(-5, 3));
  EXPECT_EQ(D.abs(Interval(-3, 5)), Interval(0, 5));
  EXPECT_EQ(D.abs(Interval(-7, -2)), Interval(2, 7));
  EXPECT_EQ(D.abs(Interval(2, 7)), Interval(2, 7));
  EXPECT_EQ(D.sqr(Interval(-3, 2)), Interval(0, 9));
  EXPECT_EQ(D.sqr(Interval(2, 4)), Interval(4, 16));
  EXPECT_EQ(D.sqr(Interval(-4, -2)), Interval(4, 16));
}

//===----------------------------------------------------------------------===//
// Backward arithmetic
//===----------------------------------------------------------------------===//

TEST_F(IntervalTest, BwdAddRefinesBothOperands) {
  // a + b in [10,10], a in [0,100], b in [3,3] -> a = 7.
  auto [A, B] = D.bwdAdd(Interval(10, 10), Interval(0, 100), Interval(3, 3));
  EXPECT_EQ(A, Interval(7, 7));
  EXPECT_EQ(B, Interval(3, 3));
}

TEST_F(IntervalTest, BwdAddPaperSection2Example) {
  // Paper §2: "read(i); j := i+1; k := j; read(T[k])" with T : array
  // [1..100]. Backward: k in [1,100] => j in [1,100] => i in [0,99].
  auto [I, One] =
      D.bwdAdd(Interval(1, 100), D.top(), Interval::singleton(1));
  EXPECT_EQ(I, Interval(0, 99));
  EXPECT_EQ(One, Interval::singleton(1));
}

TEST_F(IntervalTest, BwdSub) {
  // a - b in [0,0], a in [0,10], b in [5,20] -> a,b in [5,10].
  auto [A, B] = D.bwdSub(Interval(0, 0), Interval(0, 10), Interval(5, 20));
  EXPECT_EQ(A, Interval(5, 10));
  EXPECT_EQ(B, Interval(5, 10));
}

TEST_F(IntervalTest, BwdMulSingletonDivisor) {
  // a * 2 in [10,20] -> a in [5,10].
  auto [A, B] =
      D.bwdMul(Interval(10, 20), D.top(), Interval::singleton(2));
  EXPECT_EQ(A, Interval(5, 10));
  EXPECT_EQ(B, Interval::singleton(2));
}

TEST_F(IntervalTest, BwdMulDivisibleIsExact) {
  // a * 3 in [6,6] -> a = 2 exactly.
  auto [A, B] =
      D.bwdMul(Interval(6, 6), Interval(-100, 100), Interval(3, 3));
  EXPECT_EQ(A, Interval(2, 2));
  EXPECT_EQ(B, Interval(3, 3));
}

TEST_F(IntervalTest, BwdMulDisjointGoesBottom) {
  // a * b in [100,200] with a in [0,1], b in [0,3] is impossible.
  auto [A, B] =
      D.bwdMul(Interval(100, 200), Interval(0, 1), Interval(0, 3));
  EXPECT_TRUE(A.isBottom());
  EXPECT_TRUE(B.isBottom());
}

TEST_F(IntervalTest, BwdDivRefinesDividend) {
  // a div 2 in [3,3] -> a in [6,7] (truncation); conservative answer must
  // contain [6,7] and exclude values far away.
  auto [A, B] =
      D.bwdDiv(Interval(3, 3), D.top(), Interval::singleton(2));
  EXPECT_TRUE(D.leq(Interval(6, 7), A));
  EXPECT_FALSE(A.contains(20));
  EXPECT_FALSE(A.contains(0));
  EXPECT_EQ(B, Interval::singleton(2));
}

TEST_F(IntervalTest, BwdDivDropsZeroDivisorEndpoint) {
  auto [A, B] = D.bwdDiv(D.top(), D.top(), Interval(0, 5));
  (void)A;
  EXPECT_EQ(B, Interval(1, 5));
}

TEST_F(IntervalTest, BwdModRefinesSigns) {
  // a mod b in [3,5] with b > 0: dividend positive, divisor > 3.
  auto [A, B] =
      D.bwdMod(Interval(3, 5), D.top(), Interval(1, 100));
  EXPECT_EQ(A.Lo, 1);
  EXPECT_EQ(B, Interval(4, 100));
}

TEST_F(IntervalTest, BwdNegAbs) {
  EXPECT_EQ(D.bwdNeg(Interval(-5, -2), D.top()), Interval(2, 5));
  // |a| in [2,3] -> a in [-3,3] (the convex hull of [-3,-2] U [2,3]).
  EXPECT_EQ(D.bwdAbs(Interval(2, 3), D.top()), Interval(-3, 3));
  EXPECT_TRUE(D.bwdAbs(Interval(-5, -1), D.top()).isBottom());
}

TEST_F(IntervalTest, BwdSqr) {
  // a^2 in [0,16] -> a in [-4,4].
  EXPECT_EQ(D.bwdSqr(Interval(0, 16), D.top()), Interval(-4, 4));
  EXPECT_EQ(D.bwdSqr(Interval(0, 15), D.top()), Interval(-3, 3));
  EXPECT_TRUE(D.bwdSqr(Interval(-9, -1), D.top()).isBottom());
}

//===----------------------------------------------------------------------===//
// Comparison tests (the [i < 100] primitives)
//===----------------------------------------------------------------------===//

TEST_F(IntervalTest, AssumeLt) {
  auto [A, B] = D.assumeCmp(CmpOp::LT, Interval(0, 200), Interval(100, 100));
  EXPECT_EQ(A, Interval(0, 99));
  EXPECT_EQ(B, Interval(100, 100));
}

TEST_F(IntervalTest, AssumeLtRefinesRhsToo) {
  auto [A, B] = D.assumeCmp(CmpOp::LT, Interval(50, 60), Interval(0, 100));
  EXPECT_EQ(A, Interval(50, 60));
  EXPECT_EQ(B, Interval(51, 100));
}

TEST_F(IntervalTest, AssumeLeGeGtEqNe) {
  auto [A, B] = D.assumeCmp(CmpOp::LE, Interval(0, 200), Interval(100, 100));
  EXPECT_EQ(A, Interval(0, 100));
  std::tie(A, B) =
      D.assumeCmp(CmpOp::GE, Interval(0, 200), Interval(100, 100));
  EXPECT_EQ(A, Interval(100, 200));
  std::tie(A, B) =
      D.assumeCmp(CmpOp::GT, Interval(0, 200), Interval(100, 100));
  EXPECT_EQ(A, Interval(101, 200));
  std::tie(A, B) = D.assumeCmp(CmpOp::EQ, Interval(0, 200), Interval(50, 300));
  EXPECT_EQ(A, Interval(50, 200));
  EXPECT_EQ(B, Interval(50, 200));
  // NE trims singleton endpoints.
  std::tie(A, B) = D.assumeCmp(CmpOp::NE, Interval(0, 10), Interval(10, 10));
  EXPECT_EQ(A, Interval(0, 9));
  std::tie(A, B) = D.assumeCmp(CmpOp::NE, Interval(5, 5), Interval(5, 5));
  EXPECT_TRUE(A.isBottom());
  EXPECT_TRUE(B.isBottom());
}

TEST_F(IntervalTest, AssumeInfeasibleIsBottom) {
  auto [A, B] = D.assumeCmp(CmpOp::LT, Interval(10, 20), Interval(0, 5));
  EXPECT_TRUE(A.isBottom());
  EXPECT_TRUE(B.isBottom());
}

TEST_F(IntervalTest, CmpMayBe) {
  EXPECT_TRUE(D.cmpMayBeTrue(CmpOp::LT, Interval(0, 10), Interval(5, 5)));
  EXPECT_TRUE(D.cmpMayBeFalse(CmpOp::LT, Interval(0, 10), Interval(5, 5)));
  EXPECT_FALSE(D.cmpMayBeTrue(CmpOp::LT, Interval(5, 10), Interval(0, 5)));
  EXPECT_TRUE(D.cmpMayBeFalse(CmpOp::LT, Interval(5, 10), Interval(0, 5)));
  EXPECT_FALSE(
      D.cmpMayBeFalse(CmpOp::EQ, Interval(7, 7), Interval(7, 7)));
  EXPECT_FALSE(D.cmpMayBeTrue(CmpOp::EQ, Interval(0, 3), Interval(4, 9)));
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST_F(IntervalTest, Str) {
  EXPECT_EQ(D.str(Interval::bottom()), "_|_");
  EXPECT_EQ(D.str(Interval(1, 5)), "[1, 5]");
  EXPECT_EQ(D.str(Interval(INT64_MIN, 5)), "[-oo, 5]");
  EXPECT_EQ(D.str(Interval(0, INT64_MAX)), "[0, +oo]");
  EXPECT_EQ(D.str(D.top()), "[-oo, +oo]");
  IntervalDomain Small(-8, 7);
  EXPECT_EQ(Small.str(Interval(-8, 7)), "[-oo, +oo]");
  EXPECT_EQ(Small.str(Interval(-2, 3)), "[-2, 3]");
}

TEST_F(IntervalTest, CmpOpHelpers) {
  EXPECT_EQ(negateCmp(CmpOp::LT), CmpOp::GE);
  EXPECT_EQ(negateCmp(CmpOp::EQ), CmpOp::NE);
  EXPECT_EQ(swapCmp(CmpOp::LT), CmpOp::GT);
  EXPECT_EQ(swapCmp(CmpOp::LE), CmpOp::GE);
  EXPECT_EQ(swapCmp(CmpOp::EQ), CmpOp::EQ);
  EXPECT_STREQ(cmpOpName(CmpOp::NE), "<>");
}

} // namespace
