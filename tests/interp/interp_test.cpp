//===- tests/interp/interp_test.cpp - Concrete interpreter tests ----------===//

#include "frontend/PaperPrograms.h"
#include "interp/Interpreter.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

Interpreter::Result runProgram(const std::string &Source,
                               std::vector<int64_t> Inputs,
                               bool EnableChecks = true,
                               uint64_t MaxSteps = 1000000) {
  auto FE = runFrontend(Source);
  EXPECT_TRUE(FE.SemaOk) << FE.Diags->str();
  Interpreter I(FE.Program);
  Interpreter::Options Opts;
  Opts.Inputs = std::move(Inputs);
  Opts.EnableChecks = EnableChecks;
  Opts.MaxSteps = MaxSteps;
  return I.run(Opts);
}

TEST(InterpreterTest, ArithmeticAndOutput) {
  auto R = runProgram("program p; var i : integer;\n"
                      "begin i := 2 + 3 * 4; writeln(i, i div 2, i mod 4,\n"
                      "  abs(-7), sqr(3)) end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "14 7 2 7 9 \n");
}

TEST(InterpreterTest, BooleanOutput) {
  auto R = runProgram("program p; var b : boolean;\n"
                      "begin b := (1 < 2) and not (3 = 4);\n"
                      "writeln(b, odd(3), odd(4)) end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "true true false \n");
}

TEST(InterpreterTest, FactorialRecursion) {
  auto R = runProgram("program p; var y : integer;\n"
                      "function f(n : integer) : integer;\n"
                      "begin if n = 0 then f := 1 else f := n * f(n - 1)\n"
                      "end;\n"
                      "begin y := f(5); writeln(y) end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "120 \n");
}

TEST(InterpreterTest, WhileRepeatFor) {
  auto R = runProgram("program p; var i, s : integer;\n"
                      "begin\n"
                      "  s := 0; i := 0;\n"
                      "  while i < 5 do begin s := s + i; i := i + 1 end;\n"
                      "  repeat s := s + 100 until s > 100;\n"
                      "  for i := 1 to 3 do s := s + 1000;\n"
                      "  for i := 3 downto 5 do s := 0;\n" // empty loop
                      "  writeln(s)\n"
                      "end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "3110 \n");
}

TEST(InterpreterTest, CaseStatement) {
  auto R = runProgram("program p; var n, x : integer;\n"
                      "begin read(n);\n"
                      "  case n of 1: x := 10; 2, 3: x := 20\n"
                      "  else x := 99 end;\n"
                      "  writeln(x)\n"
                      "end.",
                      {3});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "20 \n");
}

TEST(InterpreterTest, CaseFallthroughIsError) {
  auto R = runProgram("program p; var n, x : integer;\n"
                      "begin read(n); case n of 1: x := 1 end end.",
                      {7});
  EXPECT_EQ(R.St, Interpreter::Status::RuntimeError);
}

TEST(InterpreterTest, VarParamAliasing) {
  auto R = runProgram("program p; var g : integer;\n"
                      "procedure q(var x : integer; var y : integer);\n"
                      "begin x := x + 1; y := y + 1 end;\n"
                      "begin g := 0; q(g, g); writeln(g) end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "2 \n"); // both formals alias g
}

TEST(InterpreterTest, NonLocalGoto) {
  auto R = runProgram("program p;\n"
                      "label 99;\n"
                      "var g : integer;\n"
                      "procedure q;\n"
                      "begin g := 5; goto 99; g := 7 end;\n"
                      "begin g := 0; q; g := 1; 99: writeln(g) end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "5 \n");
}

TEST(InterpreterTest, LocalGotoLoop) {
  auto R = runProgram("program p;\n"
                      "label 10, 20;\n"
                      "var i : integer;\n"
                      "begin\n"
                      "  i := 0;\n"
                      "  10: i := i + 1;\n"
                      "  if i < 5 then goto 10;\n"
                      "  goto 20;\n"
                      "  i := 999;\n"
                      "  20: writeln(i)\n"
                      "end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "5 \n");
}

TEST(InterpreterTest, ArrayBoundError) {
  auto R = runProgram("program p; var T : array [1..10] of integer;\n"
                      "    i : integer;\n"
                      "begin i := 0; T[i] := 1 end.",
                      {});
  EXPECT_EQ(R.St, Interpreter::Status::RuntimeError);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(InterpreterTest, ArrayBoundUncheckedWraps) {
  auto R = runProgram("program p; var T : array [1..10] of integer;\n"
                      "    i : integer;\n"
                      "begin i := 0; T[i] := 1; writeln(T[10]) end.",
                      {}, /*EnableChecks=*/false);
  // Without checks the store silently wraps (simulated unchecked code).
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
}

TEST(InterpreterTest, SubrangeError) {
  auto R = runProgram("program p; var n : 1..100;\n"
                      "begin read(n) end.",
                      {500});
  EXPECT_EQ(R.St, Interpreter::Status::RuntimeError);
  EXPECT_NE(R.Error.find("out of range"), std::string::npos);
}

TEST(InterpreterTest, DivByZeroError) {
  auto R = runProgram("program p; var i : integer;\n"
                      "begin read(i); i := 10 div i end.",
                      {0});
  EXPECT_EQ(R.St, Interpreter::Status::RuntimeError);
}

TEST(InterpreterTest, StepLimitOnInfiniteLoop) {
  auto R = runProgram(paper::WhileProgram, {1}, true, 10000);
  EXPECT_EQ(R.St, Interpreter::Status::StepLimit);
}

TEST(InterpreterTest, WhileProgramTerminatesWithFalse) {
  auto R = runProgram(paper::WhileProgram, {0}, true, 10000);
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
}

TEST(InterpreterTest, FrameLimitOnRunawayRecursion) {
  auto R = runProgram(paper::SelectProgram, {11}, true, 10000000);
  EXPECT_TRUE(R.St == Interpreter::Status::FrameLimit ||
              R.St == Interpreter::Status::StepLimit);
}

TEST(InterpreterTest, SelectTerminatesBelow10) {
  auto R = runProgram(paper::SelectProgram, {7});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "0 \n");
  R = runProgram(paper::SelectProgram, {10});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "1 \n");
}

TEST(InterpreterTest, InputExhausted) {
  auto R = runProgram("program p; var i : integer; begin read(i) end.", {});
  EXPECT_EQ(R.St, Interpreter::Status::InputExhausted);
}

TEST(InterpreterTest, McCarthyComputes91) {
  for (int64_t N : {0, 50, 99, 100}) {
    auto R = runProgram(paper::McCarthyProgram, {N}, true, 10000000);
    EXPECT_EQ(R.St, Interpreter::Status::Ok) << "n=" << N;
    EXPECT_EQ(R.Output, "91 \n") << "n=" << N;
  }
  auto R = runProgram(paper::McCarthyProgram, {150});
  EXPECT_EQ(R.Output, "140 \n");
}

TEST(InterpreterTest, McCarthyBuggyLoops) {
  auto R = runProgram(paper::McCarthyBuggy, {0}, true, 200000);
  EXPECT_NE(R.St, Interpreter::Status::Ok); // paper: loops for n <= 100
}

TEST(InterpreterTest, BinarySearchFinds) {
  // n=5, key=7, array = 1 3 7 9 11.
  auto R = runProgram(paper::BinarySearchProgram, {5, 7, 1, 3, 7, 9, 11});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "true \n");
  R = runProgram(paper::BinarySearchProgram, {5, 8, 1, 3, 7, 9, 11});
  EXPECT_EQ(R.St, Interpreter::Status::Ok);
  EXPECT_EQ(R.Output, "false \n");
}

std::vector<int64_t> sortInputs(std::vector<int64_t> Values) {
  std::vector<int64_t> Inputs;
  Inputs.push_back(static_cast<int64_t>(Values.size()));
  Inputs.insert(Inputs.end(), Values.begin(), Values.end());
  return Inputs;
}

std::string sortedOutput(std::vector<int64_t> Values) {
  std::sort(Values.begin(), Values.end());
  std::string Out;
  for (int64_t V : Values) {
    Out += std::to_string(V);
    Out += " \n";
  }
  return Out;
}

class SortTest : public ::testing::TestWithParam<const char *> {};

TEST_P(SortTest, SortsCorrectly) {
  std::vector<int64_t> Values = {5, -3, 42, 0, 17, 17, -100, 8};
  auto R = runProgram(GetParam(), sortInputs(Values));
  ASSERT_EQ(R.St, Interpreter::Status::Ok) << R.Error;
  EXPECT_EQ(R.Output, sortedOutput(Values));
}

TEST_P(SortTest, SingleElement) {
  auto R = runProgram(GetParam(), {1, 42});
  ASSERT_EQ(R.St, Interpreter::Status::Ok) << R.Error;
  EXPECT_EQ(R.Output, "42 \n");
}

INSTANTIATE_TEST_SUITE_P(AllSorts, SortTest,
                         ::testing::Values(paper::QuickSortProgram,
                                           paper::HeapSortProgram,
                                           paper::BubbleSortProgram));

} // namespace
