//===- tests/support/metrics_test.cpp - MetricsRegistry tests -------------===//

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace syntox;

namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry M;
  M.counter("solver.widenings").inc();
  M.counter("solver.widenings").inc(9);
  EXPECT_EQ(M.counterValue("solver.widenings"), 10u);
  EXPECT_EQ(M.counterValue("never.registered"), 0u);
}

TEST(MetricsTest, LookupReturnsStableReference) {
  MetricsRegistry M;
  Counter &C = M.counter("x");
  M.counter("a"); // rebalances the map, not the nodes
  M.counter("z");
  C.inc(3);
  EXPECT_EQ(M.counterValue("x"), 3u);
  EXPECT_EQ(&C, &M.counter("x"));
}

TEST(MetricsTest, GaugeSetAndAccumulateMax) {
  MetricsRegistry M;
  Gauge &G = M.gauge("parallel.tasks");
  G.set(5);
  G.accumulateMax(3);
  EXPECT_EQ(G.value(), 5);
  G.accumulateMax(11);
  EXPECT_EQ(G.value(), 11);
}

TEST(MetricsTest, HistogramSummary) {
  MetricsRegistry M;
  Histogram &H = M.histogram("phase.seconds");
  H.observe(0.25);
  H.observe(0.5);
  H.observe(4.0);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_DOUBLE_EQ(H.sum(), 4.75);
  EXPECT_DOUBLE_EQ(H.minValue(), 0.25);
  EXPECT_DOUBLE_EQ(H.maxValue(), 4.0);
  // Every observation landed in a bucket.
  uint64_t Total = 0;
  for (unsigned I = 0; I < Histogram::NumBuckets; ++I)
    Total += H.bucketCount(I);
  EXPECT_EQ(Total, 3u);
}

TEST(MetricsTest, ConcurrentCountersAreExact) {
  MetricsRegistry M;
  constexpr unsigned NumThreads = 4, PerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&M] {
      Counter &C = M.counter("shared");
      for (unsigned I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(M.counterValue("shared"), NumThreads * PerThread);
}

TEST(MetricsTest, SnapshotIsSortedJson) {
  MetricsRegistry M;
  M.counter("zeta").inc(1);
  M.counter("alpha").inc(2);
  M.gauge("g").set(-4);
  M.histogram("h").observe(2.0);
  json::Value Snap = M.snapshot();
  ASSERT_TRUE(Snap.isObject());
  const json::Value *Counters = Snap.find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  ASSERT_EQ(Counters->members().size(), 2u);
  EXPECT_EQ(Counters->members()[0].first, "alpha");
  EXPECT_EQ(Counters->members()[1].first, "zeta");
  EXPECT_EQ(Counters->find("zeta")->asInt(), 1);
  const json::Value *Gauges = Snap.find("gauges");
  ASSERT_TRUE(Gauges && Gauges->find("g"));
  EXPECT_EQ(Gauges->find("g")->asInt(), -4);
  const json::Value *Hists = Snap.find("histograms");
  ASSERT_TRUE(Hists && Hists->find("h"));
  EXPECT_EQ(Hists->find("h")->find("count")->asInt(), 1);
  EXPECT_DOUBLE_EQ(Hists->find("h")->find("sum")->asDouble(), 2.0);
  // The snapshot round-trips through the writer and parser.
  std::optional<json::Value> Back = json::parse(Snap.pretty());
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(*Back == Snap);
}

} // namespace
