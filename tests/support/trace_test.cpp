//===- tests/support/trace_test.cpp - TraceRecorder and exporters ---------===//

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

using namespace syntox;

namespace {

TEST(TraceRecorderTest, RecordsInTimestampOrder) {
  TraceRecorder R(TraceRecorder::AllEvents);
  R.record(TraceEventKind::PhaseBegin, 0, 0, "Forward analysis");
  R.record(TraceEventKind::Widening, 7);
  R.record(TraceEventKind::Narrowing, 7);
  R.record(TraceEventKind::PhaseEnd, 0, 0, "Forward analysis");
  std::vector<TraceEvent> Events = R.take();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events[0].Kind, TraceEventKind::PhaseBegin);
  EXPECT_EQ(Events[0].Label, "Forward analysis");
  EXPECT_EQ(Events[1].Kind, TraceEventKind::Widening);
  EXPECT_EQ(Events[1].Arg0, 7u);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs);
  // All from the same (main) thread.
  for (const TraceEvent &E : Events)
    EXPECT_EQ(E.Tid, Events[0].Tid);
}

TEST(TraceRecorderTest, TakeResetsBuffers) {
  TraceRecorder R(TraceRecorder::AllEvents);
  R.record(TraceEventKind::Widening, 1);
  EXPECT_EQ(R.take().size(), 1u);
  EXPECT_TRUE(R.take().empty());
  R.record(TraceEventKind::Narrowing, 2);
  EXPECT_EQ(R.take().size(), 1u);
}

TEST(TraceRecorderTest, MaskDropsDisabledKinds) {
  TraceRecorder R(traceEventBit(TraceEventKind::Widening));
  EXPECT_TRUE(R.wants(TraceEventKind::Widening));
  EXPECT_FALSE(R.wants(TraceEventKind::Narrowing));
  R.record(TraceEventKind::Widening, 1);
  R.record(TraceEventKind::Narrowing, 2);
  R.record(TraceEventKind::CacheHit, 3);
  std::vector<TraceEvent> Events = R.take();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, TraceEventKind::Widening);
}

TEST(TraceRecorderTest, DefaultMaskExcludesDetailKinds) {
  constexpr uint32_t M = TraceRecorder::DefaultEvents;
  EXPECT_EQ(M & traceEventBit(TraceEventKind::CacheHit), 0u);
  EXPECT_EQ(M & traceEventBit(TraceEventKind::CacheMiss), 0u);
  EXPECT_EQ(M & traceEventBit(TraceEventKind::StoreDetach), 0u);
  EXPECT_NE(M & traceEventBit(TraceEventKind::PhaseBegin), 0u);
  EXPECT_NE(M & traceEventBit(TraceEventKind::Widening), 0u);
  EXPECT_NE(M & traceEventBit(TraceEventKind::TaskRun), 0u);
  EXPECT_EQ(TraceRecorder::AllEvents, (1u << NumTraceEventKinds) - 1);
}

TEST(TraceRecorderTest, MultiThreadedMergePreservesPerThreadOrder) {
  TraceRecorder R(TraceRecorder::AllEvents);
  constexpr unsigned NumThreads = 4;
  constexpr unsigned PerThread = 500;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&R, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        R.record(TraceEventKind::Widening, /*Arg0=*/T, /*Arg1=*/I);
    });
  for (std::thread &T : Threads)
    T.join();

  std::vector<TraceEvent> Events = R.take();
  ASSERT_EQ(Events.size(), NumThreads * PerThread);
  // Merged stream is globally timestamp-ordered.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs);
  // Each recording thread got a distinct tid and its events keep their
  // program order (Arg1 ascending per Arg0).
  std::map<uint64_t, std::pair<uint64_t, uint16_t>> LastPerThread;
  std::set<uint16_t> Tids;
  for (const TraceEvent &E : Events) {
    Tids.insert(E.Tid);
    auto It = LastPerThread.find(E.Arg0);
    if (It != LastPerThread.end()) {
      EXPECT_EQ(It->second.first + 1, E.Arg1);
      EXPECT_EQ(It->second.second, E.Tid);
    } else {
      EXPECT_EQ(E.Arg1, 0u);
    }
    LastPerThread[E.Arg0] = {E.Arg1, E.Tid};
  }
  EXPECT_EQ(Tids.size(), NumThreads);
  EXPECT_GE(R.numThreads(), NumThreads);
}

TEST(TraceHookTest, NoRecorderMeansNoop) {
  // The inline hook is a null check; with no recorder nothing happens
  // and nothing crashes.
  traceEvent(nullptr, TraceEventKind::Widening, 1, 2);
  TraceRecorder R(traceEventBit(TraceEventKind::Narrowing));
  traceEvent(&R, TraceEventKind::Widening, 1, 2); // masked out
  EXPECT_TRUE(R.take().empty());
  traceEvent(&R, TraceEventKind::Narrowing, 3);
  std::vector<TraceEvent> Events = R.take();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Arg0, 3u);
}

TEST(TraceExportTest, JsonLinesMatchesSchema) {
  TraceRecorder R(TraceRecorder::AllEvents);
  R.record(TraceEventKind::PhaseBegin, 0, 0, "Forward analysis");
  R.record(TraceEventKind::ComponentBegin, 4, 0);
  R.record(TraceEventKind::Widening, 4);
  R.record(TraceEventKind::ComponentEnd, 4, 0);
  R.record(TraceEventKind::TokenUnfold, 1, 2, "mc \"quoted\"");
  R.record(TraceEventKind::PhaseEnd, 0, 0, "Forward analysis");

  std::ostringstream OS;
  writeJsonLinesTrace(R.take(), OS);
  std::istringstream In(OS.str());
  std::string Line;
  unsigned NumLines = 0;
  while (std::getline(In, Line)) {
    ++NumLines;
    std::string Error;
    std::optional<json::Value> V = json::parse(Line, &Error);
    ASSERT_TRUE(V.has_value()) << Error << " in: " << Line;
    ASSERT_TRUE(V->isObject());
    // Required fields of schemas/trace-jsonl.schema.json.
    ASSERT_TRUE(V->find("ev") && V->find("ev")->isString()) << Line;
    ASSERT_TRUE(V->find("t") && V->find("t")->isInt()) << Line;
    ASSERT_TRUE(V->find("tid") && V->find("tid")->isInt()) << Line;
    ASSERT_TRUE(V->find("arg0") && V->find("arg0")->isInt()) << Line;
    ASSERT_TRUE(V->find("arg1") && V->find("arg1")->isInt()) << Line;
    if (const json::Value *L = V->find("label")) {
      EXPECT_TRUE(L->isString());
    }
  }
  EXPECT_EQ(NumLines, 6u);
  // The escaped label round-trips.
  EXPECT_NE(OS.str().find("mc \\\"quoted\\\""), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceIsValidAndPairsSpans) {
  TraceRecorder R(TraceRecorder::AllEvents);
  R.record(TraceEventKind::PhaseBegin, 0, 0, "Forward analysis");
  R.record(TraceEventKind::ComponentBegin, 9, 0);
  R.record(TraceEventKind::Widening, 9);
  R.record(TraceEventKind::ComponentEnd, 9, 0);
  R.record(TraceEventKind::PhaseEnd, 0, 0, "Forward analysis");

  std::ostringstream OS;
  writeChromeTrace(R.take(), OS);
  std::string Error;
  std::optional<json::Value> Doc = json::parse(OS.str(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const json::Value *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  int Depth = 0;
  unsigned Instants = 0;
  for (const json::Value &E : Events->elements()) {
    ASSERT_TRUE(E.isObject());
    const json::Value *Ph = E.find("ph");
    ASSERT_TRUE(Ph && Ph->isString());
    ASSERT_TRUE(E.find("name") && E.find("name")->isString());
    ASSERT_TRUE(E.find("ts") && E.find("ts")->isNumber());
    ASSERT_TRUE(E.find("pid") && E.find("tid"));
    if (Ph->asString() == "B")
      ++Depth;
    else if (Ph->asString() == "E")
      --Depth;
    else if (Ph->asString() == "i")
      ++Instants;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0) << "unbalanced B/E spans";
  EXPECT_EQ(Instants, 1u) << "the widening instant";
}

TEST(TraceExportTest, EventKindNamesAreStable) {
  EXPECT_STREQ(traceEventKindName(TraceEventKind::PhaseBegin),
               "phase_begin");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::ComponentBegin),
               "component_begin");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::Widening), "widening");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::CacheHit), "cache_hit");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::TaskRun), "task_run");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::StoreDetach),
               "store_detach");
}

} // namespace
