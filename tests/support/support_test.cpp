//===- tests/support/support_test.cpp - Support library unit tests --------===//

#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

TEST(SourceLocTest, ValidityAndOrdering) {
  SourceLoc Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.str(), "<unknown>");

  SourceLoc A(1, 5), B(2, 1), C(1, 9);
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A.str(), "1:5");
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(A < C);
  EXPECT_FALSE(B < A);
  EXPECT_EQ(A, SourceLoc(1, 5));
}

TEST(SourceRangeTest, Basics) {
  SourceRange R(SourceLoc(1, 1), SourceLoc(1, 10));
  EXPECT_TRUE(R.isValid());
  EXPECT_FALSE(SourceRange().isValid());
  SourceRange Point{SourceLoc(3, 4)};
  EXPECT_EQ(Point.Begin, Point.End);
}

TEST(DiagnosticsTest, CountsAndRendering) {
  DiagnosticsEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(2, 3), "variable may exceed 100");
  Diags.error(SourceLoc(4, 1), "expected ';'");
  Diags.note(SourceLoc(4, 1), "to match this 'begin'");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
  EXPECT_EQ(Diags.diagnostics()[0].str(),
            "2:3: warning: variable may exceed 100");
  EXPECT_NE(Diags.str().find("4:1: error: expected ';'"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, RangeStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-5, 9);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 9);
  }
  for (int I = 0; I < 100; ++I)
    EXPECT_LT(R.below(3), 3u);
}

TEST(RngTest, RoughUniformity) {
  Rng R(123);
  int Counts[4] = {0, 0, 0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.below(4)];
  for (int C : Counts) {
    EXPECT_GT(C, 800);
    EXPECT_LT(C, 1200);
  }
}

TEST(StatsTest, RenderingContainsFigure2Fields) {
  AnalysisStats S;
  S.ControlPoints = 32;
  S.Equations = 448;
  S.Unions = 2104;
  S.Widenings = 814;
  S.CpuSeconds = 0.6;
  S.BytesUsed = 46 * 1024;
  S.Phases.push_back(PhaseStats{"Forward analysis", 84, 56});
  std::string Out = S.str();
  EXPECT_NE(
      Out.find("Forward analysis [round 0]: widening (84), narrowing (56)"),
      std::string::npos);
  EXPECT_NE(Out.find("Control points: 32"), std::string::npos);
  EXPECT_NE(Out.find("Equations: 448 (2104 unions, 814 widenings)"),
            std::string::npos);
  EXPECT_NE(Out.find("Memory: 46 Kb"), std::string::npos);
}

} // namespace
