//===- tests/support/json_test.cpp - JSON value/writer/parser tests -------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  json::Value V = json::Value::object();
  V.set("zeta", 1);
  V.set("alpha", 2);
  V.set("mid", 3);
  EXPECT_EQ(V.str(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Replacing keeps the original position.
  V.set("alpha", 9);
  EXPECT_EQ(V.str(), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, EscapesStrings) {
  json::Value V = json::Value("a\"b\\c\n\t");
  EXPECT_EQ(V.str(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(json::quoted("x\x01y"), "\"x\\u0001y\"");
}

TEST(JsonTest, WritesScalars) {
  EXPECT_EQ(json::Value().str(), "null");
  EXPECT_EQ(json::Value(true).str(), "true");
  EXPECT_EQ(json::Value(false).str(), "false");
  EXPECT_EQ(json::Value(int64_t(-42)).str(), "-42");
  EXPECT_EQ(json::Value(uint64_t(7)).str(), "7");
}

TEST(JsonTest, ParsesNestedDocuments) {
  std::optional<json::Value> V = json::parse(
      "{\"a\": [1, 2.5, true, null, \"s\"], \"b\": {\"c\": -3}}");
  ASSERT_TRUE(V.has_value());
  const json::Value *A = V->find("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->size(), 5u);
  EXPECT_EQ(A->at(0).asInt(), 1);
  EXPECT_DOUBLE_EQ(A->at(1).asDouble(), 2.5);
  EXPECT_TRUE(A->at(2).asBool());
  EXPECT_TRUE(A->at(3).isNull());
  EXPECT_EQ(A->at(4).asString(), "s");
  EXPECT_EQ(V->find("b")->find("c")->asInt(), -3);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(json::parse("{", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(json::parse("tru").has_value());
  EXPECT_FALSE(json::parse("1 2").has_value()); // trailing garbage
}

TEST(JsonTest, RoundTripsThroughWriterAndParser) {
  json::Value Doc = json::Value::object();
  Doc.set("name", "trace \"x\"\n");
  Doc.set("n", int64_t(123));
  Doc.set("f", 0.125);
  json::Value Arr = json::Value::array();
  Arr.push(json::Value(true));
  Arr.push(json::Value());
  Doc.set("arr", std::move(Arr));

  for (const std::string &Rendered : {Doc.str(), Doc.pretty()}) {
    std::optional<json::Value> Back = json::parse(Rendered);
    ASSERT_TRUE(Back.has_value()) << Rendered;
    EXPECT_TRUE(*Back == Doc) << Rendered;
  }
}

} // namespace
