//===- tests/support/thread_budget_test.cpp - Oversubscription guard ------===//
//
// The ThreadBudget is the batch scheduler's oversubscription guard: all
// pools created under a ThreadBudget::Scope draw worker slots from one
// shared pool, nested pools get only what remains, and a zero-slot grant
// degrades the pool to inline execution — so the number of live budgeted
// threads never exceeds the budget no matter how pools nest.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace syntox;

namespace {

TEST(ThreadBudgetTest, GrantsAreCappedByTheRemainingSlots) {
  ThreadBudget Budget(4);
  EXPECT_EQ(Budget.total(), 4u);
  EXPECT_EQ(Budget.acquire(3), 3u);
  EXPECT_EQ(Budget.acquire(3), 1u); // only one slot left
  EXPECT_EQ(Budget.acquire(3), 0u); // exhausted
  Budget.release(1);
  EXPECT_EQ(Budget.acquire(3), 1u);
  Budget.release(4);
}

TEST(ThreadBudgetTest, PoolsUnderAScopeShareTheBudget) {
  ThreadBudget Budget(4);
  ThreadBudget::Scope Scope(Budget);
  ThreadPool Outer(3);
  EXPECT_EQ(Outer.size(), 3u);
  ThreadPool Inner(8); // asks for 8, budget has 1 left
  EXPECT_EQ(Inner.size(), 1u);
  ThreadPool Empty(8); // nothing left: inline mode
  EXPECT_EQ(Empty.size(), 0u);
  EXPECT_TRUE(Empty.inlineMode());
}

TEST(ThreadBudgetTest, InlineModeStillRunsEveryJob) {
  ThreadBudget Budget(1);
  ThreadBudget::Scope Scope(Budget);
  ThreadPool Taker(1);
  ThreadPool Inline(4);
  ASSERT_TRUE(Inline.inlineMode());
  std::atomic<int> Ran{0};
  for (int I = 0; I < 100; ++I)
    Inline.submit([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
  Inline.wait();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadBudgetTest, PeakLiveThreadsNeverExceedsTheBudget) {
  ThreadBudget Budget(4);
  {
    ThreadBudget::Scope Scope(Budget);
    ThreadPool Outer(2);
    std::atomic<int> Done{0};
    for (int I = 0; I < 8; ++I)
      Outer.submit([&] {
        // Workers inherit the budget, so pools created on a worker
        // thread draw from the same slot pool (the nested-parallelism
        // shape AnalysisBatch drives).
        ThreadPool Nested(4);
        for (int J = 0; J < 4; ++J)
          Nested.submit([&] {
            Done.fetch_add(1, std::memory_order_relaxed);
          });
        Nested.wait();
      });
    Outer.wait();
    EXPECT_EQ(Done.load(), 32);
  }
  EXPECT_LE(Budget.peakLiveThreads(), 4u);
  EXPECT_GE(Budget.peakLiveThreads(), 2u); // the outer pool itself ran
}

TEST(ThreadBudgetTest, UnbudgetedPoolsAreUnaffected) {
  // No Scope active: pools size themselves as requested.
  ThreadPool P(3);
  EXPECT_EQ(P.size(), 3u);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 10; ++I)
    P.submit([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
  P.wait();
  EXPECT_EQ(Ran.load(), 10);
}

} // namespace
