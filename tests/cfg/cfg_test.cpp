//===- tests/cfg/cfg_test.cpp - CFG builder unit tests --------------------===//

#include "cfg/CfgBuilder.h"
#include "frontend/PaperPrograms.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

struct BuiltCfg {
  FrontendResult Frontend;
  std::unique_ptr<ProgramCfg> Cfg;
};

BuiltCfg buildCfg(const std::string &Source) {
  BuiltCfg Out;
  Out.Frontend = runFrontend(Source);
  EXPECT_TRUE(Out.Frontend.SemaOk) << Out.Frontend.Diags->str();
  if (!Out.Frontend.SemaOk)
    return Out;
  CfgBuilder Builder(*Out.Frontend.Ctx, *Out.Frontend.Diags);
  Out.Cfg = Builder.build(Out.Frontend.Program);
  return Out;
}

unsigned countEdges(const RoutineCfg &C, Action::Kind K) {
  unsigned N = 0;
  for (const CfgEdge &E : C.edges())
    N += E.Act.K == K;
  return N;
}

TEST(CfgTest, MinimalProgram) {
  auto B = buildCfg("program p; begin end.");
  ASSERT_NE(B.Cfg, nullptr);
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  ASSERT_NE(Main, nullptr);
  EXPECT_GE(Main->numPoints(), 2u); // entry + exit at least
  EXPECT_NE(Main->entry(), Main->exit());
}

TEST(CfgTest, AssignmentLowering) {
  auto B = buildCfg("program p; var i : integer; begin i := 1 + 2 end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  EXPECT_EQ(countEdges(*Main, Action::Kind::Assign), 1u);
  EXPECT_TRUE(B.Cfg->checks().empty());
}

TEST(CfgTest, SubrangeAssignmentGetsCheck) {
  auto B = buildCfg("program p; var i : 1..10; j : integer;\n"
                    "begin i := j end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  EXPECT_EQ(countEdges(*Main, Action::Kind::Check), 1u);
  ASSERT_EQ(B.Cfg->checks().size(), 1u);
  EXPECT_EQ(B.Cfg->checks()[0].Kind, CheckKind::SubrangeBound);
  EXPECT_EQ(B.Cfg->checks()[0].Lo, 1);
  EXPECT_EQ(B.Cfg->checks()[0].Hi, 10);
}

TEST(CfgTest, ArrayAccessGetsBoundCheck) {
  auto B = buildCfg("program p; var T : array [1..100] of integer;\n"
                    "    i : integer;\n"
                    "begin T[i] := T[i + 1] end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  // One check for the store index, one for the load index.
  EXPECT_EQ(countEdges(*Main, Action::Kind::Check), 2u);
  for (const CheckInfo &C : B.Cfg->checks()) {
    EXPECT_EQ(C.Kind, CheckKind::ArrayBound);
    EXPECT_EQ(C.Lo, 1);
    EXPECT_EQ(C.Hi, 100);
  }
  EXPECT_EQ(countEdges(*Main, Action::Kind::ArrayStore), 1u);
}

TEST(CfgTest, DivAndModGetChecks) {
  auto B = buildCfg("program p; var i : integer;\n"
                    "begin i := i div 2; i := i mod 3 end.");
  ASSERT_EQ(B.Cfg->checks().size(), 2u);
  EXPECT_EQ(B.Cfg->checks()[0].Kind, CheckKind::DivByZero);
  EXPECT_EQ(B.Cfg->checks()[1].Kind, CheckKind::DivByZero);
}

TEST(CfgTest, NestedCallsAreFlattened) {
  auto B = buildCfg(paper::McCarthyProgram);
  const RoutineDecl *Mc = B.Frontend.Program->block()->Routines[0];
  const RoutineCfg *McCfg = B.Cfg->cfgFor(Mc);
  ASSERT_NE(McCfg, nullptr);
  // The else branch nests 9 calls; each must be its own edge.
  EXPECT_EQ(countEdges(*McCfg, Action::Kind::Call), 9u);
  // Every call edge's arguments must be call-free.
  for (const CfgEdge &E : McCfg->edges()) {
    if (E.Act.K != Action::Kind::Call)
      continue;
    for (const Expr *Arg : E.Act.Call->args()) {
      const auto *Inner = dyn_cast<CallExpr>(Arg);
      EXPECT_TRUE(!Inner || Inner->builtin() != BuiltinFn::None);
    }
    EXPECT_NE(E.Act.ResultVar, nullptr);
  }
}

TEST(CfgTest, WhileLoopHasCycle) {
  auto B = buildCfg(paper::IntermittentProgramPlain);
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  // Find a back edge: an edge whose target appears earlier.
  bool HasBackEdge = false;
  for (const CfgEdge &E : Main->edges())
    HasBackEdge |= E.To <= E.From;
  EXPECT_TRUE(HasBackEdge);
  EXPECT_EQ(countEdges(*Main, Action::Kind::Assume), 2u);
}

TEST(CfgTest, IntermittentAssertionRecorded) {
  auto B = buildCfg(paper::IntermittentProgram);
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  ASSERT_EQ(Main->intermittents().size(), 1u);
  EXPECT_NE(Main->intermittents()[0].Cond, nullptr);
}

TEST(CfgTest, InvariantAssertionBecomesEdge) {
  auto B = buildCfg(paper::McCarthyWithInvariant);
  const RoutineDecl *Mc = B.Frontend.Program->block()->Routines[0];
  const RoutineCfg *McCfg = B.Cfg->cfgFor(Mc);
  EXPECT_EQ(countEdges(*McCfg, Action::Kind::Invariant), 1u);
}

TEST(CfgTest, ForLoopDesugaring) {
  auto B = buildCfg(paper::ForProgram);
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  // Entry test, loop-continue test, loop-exit test, plus the enter-skip.
  EXPECT_GE(countEdges(*Main, Action::Kind::Assume), 4u);
  // i := from and i := i + 1 assignments (bounds need no temps here).
  EXPECT_GE(countEdges(*Main, Action::Kind::Assign), 2u);
  // read(n) and read(T[i]).
  EXPECT_EQ(countEdges(*Main, Action::Kind::ReadScalar), 1u);
  EXPECT_EQ(countEdges(*Main, Action::Kind::ReadArray), 1u);
  // The array read gets its bound check.
  ASSERT_EQ(B.Cfg->checks().size(), 1u);
  EXPECT_EQ(B.Cfg->checks()[0].Kind, CheckKind::ArrayBound);
}

TEST(CfgTest, CaseLowering) {
  auto B = buildCfg("program p; var n, x : integer;\n"
                    "begin\n"
                    "  case n of\n"
                    "    1: x := 1;\n"
                    "    2, 3: x := 2\n"
                    "  end\n"
                    "end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  // Two arm assumes plus the no-match assume.
  EXPECT_EQ(countEdges(*Main, Action::Kind::Assume), 3u);
  // The no-else fallthrough registers a CaseMatch check.
  ASSERT_EQ(B.Cfg->checks().size(), 1u);
  EXPECT_EQ(B.Cfg->checks()[0].Kind, CheckKind::CaseMatch);
}

TEST(CfgTest, LocalGotoEdge) {
  auto B = buildCfg("program p; label 10; var i : integer;\n"
                    "begin\n"
                    "  10: i := i + 1;\n"
                    "  goto 10\n"
                    "end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.Frontend.Program);
  ASSERT_TRUE(Main->labelPoints().count(10));
  unsigned LabelPt = Main->labelPoints().at(10);
  bool HasEdgeToLabel = false;
  for (const CfgEdge &E : Main->edges())
    HasEdgeToLabel |= (E.To == LabelPt && E.From > LabelPt);
  EXPECT_TRUE(HasEdgeToLabel);
  EXPECT_TRUE(Main->channelExits().empty());
}

TEST(CfgTest, NonLocalGotoCreatesChannel) {
  auto B = buildCfg("program p;\n"
                    "label 99;\n"
                    "var i : integer;\n"
                    "procedure q;\n"
                    "begin goto 99 end;\n"
                    "begin q; 99: i := 0 end.");
  const RoutineDecl *Q = B.Frontend.Program->block()->Routines[0];
  const RoutineCfg *QCfg = B.Cfg->cfgFor(Q);
  ASSERT_EQ(QCfg->channelExits().size(), 1u);
  const Channel &C = QCfg->channelExits().begin()->first;
  EXPECT_EQ(C.Target, B.Frontend.Program);
  EXPECT_EQ(C.Label, 99);
  // The program owns the label locally: no channel of its own.
  EXPECT_TRUE(B.Cfg->cfgFor(B.Frontend.Program)->channelExits().empty());
}

TEST(CfgTest, ChannelsPropagateThroughCallers) {
  auto B = buildCfg("program p;\n"
                    "label 99;\n"
                    "var i : integer;\n"
                    "procedure inner;\n"
                    "begin goto 99 end;\n"
                    "procedure middle;\n"
                    "begin inner end;\n"
                    "begin middle; 99: i := 0 end.");
  const RoutineDecl *Middle = B.Frontend.Program->block()->Routines[1];
  ASSERT_EQ(Middle->name(), "middle");
  const RoutineCfg *MiddleCfg = B.Cfg->cfgFor(Middle);
  // middle does not jump itself but calls inner, which does: it inherits
  // the channel.
  ASSERT_EQ(MiddleCfg->channelExits().size(), 1u);
  EXPECT_EQ(MiddleCfg->channelExits().begin()->first.Label, 99);
}

TEST(CfgTest, CallArgumentSubrangeChecks) {
  auto B = buildCfg(paper::HeapSortProgram);
  // sift(l, r : index) is called twice, each with two subrange checks on
  // copy-in, plus the subrange check on read(n).
  unsigned SubrangeChecks = 0;
  for (const CheckInfo &C : B.Cfg->checks())
    SubrangeChecks += C.Kind == CheckKind::SubrangeBound;
  EXPECT_GE(SubrangeChecks, 5u);
}

TEST(CfgTest, TotalPointsGrowWithProgramSize) {
  auto Small = buildCfg(paper::FactProgram);
  auto Large = buildCfg(paper::McCarthyProgram);
  EXPECT_GT(Large.Cfg->totalPoints(), Small.Cfg->totalPoints());
}

} // namespace
