//===- tests/cfg/cfgdot_test.cpp - Graphviz dumper tests -------------------===//

#include "cfg/CfgBuilder.h"
#include "cfg/CfgDot.h"
#include "frontend/PaperPrograms.h"

#include "../common/FrontendTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

struct Built {
  FrontendResult FE;
  std::unique_ptr<ProgramCfg> Cfg;
};

Built build(const std::string &Source) {
  Built B;
  B.FE = runFrontend(Source);
  EXPECT_TRUE(B.FE.SemaOk) << B.FE.Diags->str();
  CfgBuilder Builder(*B.FE.Ctx, *B.FE.Diags);
  B.Cfg = Builder.build(B.FE.Program);
  return B;
}

TEST(CfgDotTest, RoutineDigraph) {
  Built B = build("program p; var i : integer;\n"
                  "begin i := 0; while i < 10 do i := i + 1 end.");
  const RoutineCfg *Main = B.Cfg->cfgFor(B.FE.Program);
  std::string Dot = toDot(*Main);
  EXPECT_NE(Dot.find("digraph \"p\""), std::string::npos);
  EXPECT_NE(Dot.find("i := i + 1"), std::string::npos);
  EXPECT_NE(Dot.find("[i < 10]"), std::string::npos);
  EXPECT_NE(Dot.find("[not i < 10]"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);
  EXPECT_NE(Dot.find("shape=doublecircle"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(CfgDotTest, ProgramClusters) {
  Built B = build(paper::McCarthyProgram);
  std::string Dot = toDot(*B.Cfg);
  EXPECT_NE(Dot.find("cluster_mccarthy"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_mc"), std::string::npos);
  EXPECT_NE(Dot.find("call mc"), std::string::npos);
}

TEST(CfgDotTest, CheckLabelsIncludeRanges) {
  Built B = build("program p; var T : array [1..100] of integer;\n"
                  "    i : integer;\n"
                  "begin read(i); T[i] := i div 2 end.");
  std::string Dot = toDot(*B.Cfg);
  EXPECT_NE(Dot.find("in [1, 100]"), std::string::npos);
  EXPECT_NE(Dot.find("<> 0"), std::string::npos);
  EXPECT_NE(Dot.find("read(i)"), std::string::npos);
}

TEST(CfgDotTest, ActionLabels) {
  Built B = build(paper::WhileProgram);
  bool SawAssign = false, SawAssume = false;
  const RoutineCfg *Main = B.Cfg->cfgFor(B.FE.Program);
  for (const CfgEdge &E : Main->edges()) {
    std::string Label = actionLabel(E.Act, B.Cfg.get());
    if (E.Act.K == Action::Kind::Assign) {
      EXPECT_NE(Label.find(":="), std::string::npos);
      SawAssign = true;
    }
    if (E.Act.K == Action::Kind::Assume) {
      EXPECT_EQ(Label.front(), '[');
      SawAssume = true;
    }
    if (E.Act.K == Action::Kind::Nop) {
      EXPECT_TRUE(Label.empty());
    }
  }
  EXPECT_TRUE(SawAssign);
  EXPECT_TRUE(SawAssume);
}

} // namespace
