//===- tests/serve/serve_test.cpp - Analysis daemon protocol tests --------===//
//
// Drives serve::Server in-process over a socketpair — the same code
// path syntox_serve wires to stdio and sockets — and pins down:
//
//  - the protocol goldens: envelope shape, id echo, findings payloads
//    bitwise-equal to a direct AnalysisSession run;
//  - malformed-request handling (the daemon answers an error and keeps
//    serving) and mid-stream disconnect (a clean drain, never a hang);
//  - concurrent-vs-sequential determinism over a random corpus;
//  - the resource bounds: parked-session reuse, per-document disk-cache
//    shards, and the size-capped cache GC under an edit wave;
//  - graceful drain with requests in flight, admission timeouts, and
//    the admin requests (gc, metrics, ping, shutdown).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "../common/RandomProgramGen.h"
#include "core/AnalysisRequest.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace syntox;
using namespace syntox::serve;
using test::ProgramGenerator;

namespace {

constexpr const char *CountLoop =
    "program p; var i : integer;\n"
    "begin i := 0; while i < 100 do i := i + 1 end.";

/// An in-process client of one Server over a socketpair. The server
/// runs on its own thread, exactly as syntox_serve drives it.
class ServeHarness {
public:
  explicit ServeHarness(ServerConfig Cfg) : Srv(Cfg) {
    int Fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    ClientFd = Fds[0];
    ServerFd = Fds[1];
    Thread = std::thread([this] { More = Srv.serve(ServerFd, ServerFd); });
  }

  ~ServeHarness() { finish(); }

  Server &server() { return Srv; }

  void send(const std::string &Line) { sendRaw(Line + "\n"); }

  /// Writes bytes verbatim — no terminator — for the disconnect tests.
  void sendRaw(const std::string &Bytes) {
    ASSERT_EQ(::write(ClientFd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
  }

  /// Blocks for the next response line (10s cap) and parses it.
  json::Value recv() {
    if (!Reader)
      Reader = std::make_unique<LineReader>(ClientFd);
    std::string Line;
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < Deadline) {
      LineReader::Status S = Reader->next(Line, 100);
      if (S == LineReader::Status::Line) {
        std::string Error;
        std::optional<json::Value> V = json::parse(Line, &Error);
        EXPECT_TRUE(V) << Error << "\nline: " << Line;
        return V ? *V : json::Value();
      }
      if (S == LineReader::Status::Eof)
        break;
    }
    ADD_FAILURE() << "no response before deadline";
    return json::Value();
  }

  /// Receives \p N responses and indexes them by id.
  std::map<std::string, json::Value> recvAll(size_t N) {
    std::map<std::string, json::Value> ById;
    for (size_t I = 0; I < N; ++I) {
      json::Value R = recv();
      if (const json::Value *Id = R.find("id"))
        ById[Id->asString()] = std::move(R);
    }
    return ById;
  }

  /// Half-closes the client->server direction: the server sees EOF and
  /// drains.
  void closeInput() {
    if (ClientFd >= 0)
      ::shutdown(ClientFd, SHUT_WR);
  }

  /// Drains the connection and joins the serving thread. Returns
  /// Server::serve's result (false = a client shutdown request).
  bool finish() {
    if (Thread.joinable()) {
      closeInput();
      Thread.join();
    }
    if (ServerFd >= 0)
      ::close(ServerFd);
    if (ClientFd >= 0)
      ::close(ClientFd);
    ServerFd = ClientFd = -1;
    return More;
  }

private:
  Server Srv;
  int ClientFd = -1;
  int ServerFd = -1;
  std::thread Thread;
  std::unique_ptr<LineReader> Reader;
  bool More = true;
};

/// Findings minus the timing/counter members — the determinism payload.
json::Value findingsOnly(const json::Value &Findings) {
  json::Value Out = json::Value::object();
  for (const auto &KV : Findings.members())
    if (KV.first != "stats" && KV.first != "metrics")
      Out.set(KV.first, KV.second);
  return Out;
}

json::Value sequentialFindings(const std::string &Source,
                               AnalysisOptions Opts = {}) {
  AnalysisRequest R;
  R.Source = Source;
  R.Opts = std::move(Opts);
  AnalysisOutcome O = runRequest(std::move(R));
  EXPECT_TRUE(O.OK) << O.Error;
  return O.OK ? findingsOnly(O.findingsJson()) : json::Value();
}

std::string analyzeLine(const std::string &Id, const std::string &Source,
                        const std::string &Extra = std::string()) {
  json::Value Req = json::Value::object();
  Req.set("protocol_version", 1);
  Req.set("id", Id);
  Req.set("kind", "analyze");
  Req.set("source", Source);
  std::string Line = Req.str();
  if (!Extra.empty())
    Line.insert(Line.size() - 1, "," + Extra);
  return Line;
}

std::string adminLine(const std::string &Id, const char *Kind) {
  return std::string("{\"protocol_version\":1,\"id\":\"") + Id +
         "\",\"kind\":\"" + Kind + "\"}";
}

uint64_t treeBytes(const std::filesystem::path &Dir) {
  namespace fs = std::filesystem;
  uint64_t Total = 0;
  std::error_code EC;
  for (fs::recursive_directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC))
    if (It->is_regular_file(EC))
      Total += It->file_size(EC);
  return Total;
}

std::filesystem::path freshDir(const char *Name) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / Name;
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);
  return Dir;
}

TEST(ServeProtocolTest, AnalyzeGoldenEnvelopeAndFindings) {
  ServeHarness H(ServerConfig{});
  H.send(analyzeLine("req-1", CountLoop));
  json::Value R = H.recv();

  ASSERT_TRUE(R.isObject());
  EXPECT_EQ(R.find("protocol_version")->asInt(), 1);
  EXPECT_EQ(R.find("id")->asString(), "req-1");
  EXPECT_EQ(R.find("kind")->asString(), "analyze");
  EXPECT_EQ(R.find("status")->asString(), "ok");
  ASSERT_TRUE(R.has("findings"));
  EXPECT_FALSE(R.has("demand"));
  EXPECT_FALSE(R.has("error"));

  const json::Value &T = *R.find("timing");
  EXPECT_GE(T.find("queue_ms")->asDouble(), 0.0);
  EXPECT_GE(T.find("run_ms")->asDouble(), 0.0);
  EXPECT_GE(T.find("total_ms")->asDouble(),
            T.find("run_ms")->asDouble());

  // The findings document matches a direct session run bit for bit
  // (minus the stats/metrics counters, which carry timings).
  const json::Value &F = *R.find("findings");
  for (const char *Key :
       {"verdict", "conditions", "invariant_warnings", "checks", "stats",
        "metrics"})
    EXPECT_TRUE(F.has(Key)) << Key;
  EXPECT_TRUE(findingsOnly(F) == sequentialFindings(CountLoop));
}

TEST(ServeProtocolTest, DemandQueryAnswersOverTheWire) {
  ServeHarness H(ServerConfig{});
  H.send(analyzeLine("q1", CountLoop, "\"query\":\"point:2\""));
  json::Value R = H.recv();
  EXPECT_EQ(R.find("status")->asString(), "ok");
  ASSERT_TRUE(R.has("demand"));
  EXPECT_FALSE(R.has("findings"));
  const json::Value &D = *R.find("demand");
  EXPECT_EQ(D.find("query")->find("kind")->asString(), "point");
  EXPECT_EQ(D.find("query")->find("line")->asInt(), 2);
  EXPECT_FALSE(D.find("states")->elements().empty());
}

TEST(ServeProtocolTest, PerRequestOptionsOverrideDefaults) {
  // Server default forward-only; the request turns backward analysis
  // back on and must see conditions a forward-only run cannot derive.
  ServerConfig Cfg;
  Cfg.Defaults.backward(false);
  ServeHarness H(Cfg);
  std::string Guarded =
      "program p; var n : integer;\n"
      "begin read(n); n := 1 div n end.";
  H.send(analyzeLine("fwd", Guarded));
  H.send(analyzeLine("bwd", Guarded, "\"options\":{\"backward\":true}"));
  auto ById = H.recvAll(2);
  ASSERT_EQ(ById.size(), 2u);
  EXPECT_EQ(ById["fwd"].find("status")->asString(), "ok");
  EXPECT_EQ(ById["bwd"].find("status")->asString(), "ok");
  EXPECT_TRUE(findingsOnly(*ById["bwd"].find("findings")) ==
              sequentialFindings(Guarded));
  EXPECT_TRUE(findingsOnly(*ById["fwd"].find("findings")) ==
              sequentialFindings(Guarded, AnalysisOptions().backward(false)));
}

TEST(ServeProtocolTest, MalformedRequestsAnswerErrorsAndServerSurvives) {
  ServeHarness H(ServerConfig{});
  struct Case {
    const char *Line;
    const char *ErrorNeedle;
  };
  const Case Cases[] = {
      {"this is not json", "malformed request line"},
      {"[1,2,3]", "must be a JSON object"},
      {"{\"id\":\"x\"}", "protocol_version"},
      {"{\"protocol_version\":99,\"id\":\"x\"}", "protocol_version"},
      {"{\"protocol_version\":1}", "missing request id"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"kind\":\"dance\"}",
       "unknown request kind"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"kind\":\"analyze\"}",
       "without 'source'"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"source\":\"program p; "
       "begin end.\",\"options\":{\"sorcery\":1}}",
       "unknown option"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"source\":\"program p; "
       "begin end.\",\"options\":{\"cache_dir\":\"/tmp/x\"}}",
       "cache_key"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"source\":\"program p; "
       "begin end.\",\"query\":\"sideways:3\"}",
       "invalid query"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"kind\":\"ping\","
       "\"source\":\"program p; begin end.\"}",
       "only valid on analyze"},
      {"{\"protocol_version\":1,\"id\":\"x\",\"unicorn\":true}",
       "unknown request member"},
  };
  for (const Case &C : Cases) {
    H.send(C.Line);
    json::Value R = H.recv();
    EXPECT_EQ(R.find("status")->asString(), "error") << C.Line;
    EXPECT_NE(R.find("error")->asString().find(C.ErrorNeedle),
              std::string::npos)
        << C.Line << " -> " << R.find("error")->asString();
    EXPECT_FALSE(R.has("findings"));
  }
  // A frontend error is an error *response*, not a dead daemon.
  H.send(analyzeLine("bad-src", "program p; begin x := end."));
  json::Value Bad = H.recv();
  EXPECT_EQ(Bad.find("status")->asString(), "error");
  EXPECT_FALSE(Bad.find("error")->asString().empty());
  // The daemon is still serving.
  H.send(adminLine("alive", "ping"));
  EXPECT_EQ(H.recv().find("status")->asString(), "ok");
}

TEST(ServeProtocolTest, MidStreamDisconnectDrainsCleanly) {
  ServeHarness H(ServerConfig{});
  H.send(analyzeLine("done", CountLoop));
  EXPECT_EQ(H.recv().find("status")->asString(), "ok");
  // A half request with no terminator, then the client vanishes. The
  // trailing fragment is flushed as one (malformed) line at EOF; the
  // daemon answers it and serve() returns instead of hanging.
  H.sendRaw("{\"protocol_version\":1,\"id\":\"tr");
  H.closeInput();
  json::Value Tail = H.recv();
  EXPECT_EQ(Tail.find("status")->asString(), "error");
  EXPECT_TRUE(H.finish());
}

TEST(ServeConcurrencyTest, ConcurrentFindingsMatchSequential) {
  // The 200-seed differential, serving edition: a random corpus
  // pipelined through a concurrent daemon must produce findings
  // bitwise-identical to one-at-a-time sessions.
  const unsigned N = 60;
  std::vector<std::string> Sources;
  for (unsigned I = 0; I < N; ++I) {
    ProgramGenerator G(9100 + I, /*WithAssertions=*/true);
    Sources.push_back(G.generate(
        static_cast<ProgramGenerator::Family>(I % 4)));
  }

  ServerConfig Cfg;
  Cfg.TotalThreads = 4;
  ServeHarness H(Cfg);
  for (unsigned I = 0; I < N; ++I)
    H.send(analyzeLine("p" + std::to_string(I), Sources[I]));
  auto ById = H.recvAll(N);
  ASSERT_EQ(ById.size(), N);

  for (unsigned I = 0; I < N; ++I) {
    const json::Value &R = ById["p" + std::to_string(I)];
    ASSERT_EQ(R.find("status")->asString(), "ok") << I;
    EXPECT_TRUE(findingsOnly(*R.find("findings")) ==
                sequentialFindings(Sources[I]))
        << "seed " << 9100 + I;
  }
  H.finish();
  EXPECT_LE(H.server().peakLiveThreads(), 4u);
}

TEST(ServeSessionTest, ResubmissionReusesParkedSessions) {
  ServeHarness H(ServerConfig{});
  H.send(analyzeLine("a", CountLoop));
  json::Value First = H.recv();
  ASSERT_EQ(First.find("status")->asString(), "ok");
  H.send(analyzeLine("b", CountLoop));
  json::Value Second = H.recv();
  ASSERT_EQ(Second.find("status")->asString(), "ok");
  EXPECT_TRUE(findingsOnly(*First.find("findings")) ==
              findingsOnly(*Second.find("findings")));
  EXPECT_GE(H.server().metrics().counterValue("serve.session_hits"), 1u);
  EXPECT_GE(H.server().metrics().counterValue("session.engine_reuses"),
            1u);
}

TEST(ServeCacheTest, CacheKeySharesShardAndGcHoldsCap) {
  namespace fs = std::filesystem;
  fs::path Dir = freshDir("syntox_serve_gc_test");
  ServerConfig Cfg;
  Cfg.CacheDir = Dir.string();
  Cfg.CacheMaxBytes = 24 * 1024;
  ServeHarness H(Cfg);

  // Edit wave over many distinct documents: every save is followed by a
  // collection, so the tree never rests above the cap.
  const unsigned Docs = 12;
  unsigned Sent = 0;
  for (unsigned Wave = 0; Wave < 2; ++Wave)
    for (unsigned D = 0; D < Docs; ++D) {
      ProgramGenerator G(7700 + D, /*WithAssertions=*/true);
      std::string Source = G.generate();
      if (Wave == 1)
        Source = G.mutate(std::move(Source));
      H.send(analyzeLine(
          "w" + std::to_string(Wave) + "d" + std::to_string(D), Source,
          "\"cache_key\":\"doc-" + std::to_string(D) + "\""));
      ++Sent;
    }
  auto ById = H.recvAll(Sent);
  ASSERT_EQ(ById.size(), Sent);
  for (const auto &KV : ById)
    EXPECT_EQ(KV.second.find("status")->asString(), "ok") << KV.first;

  // The warm path actually engaged: some run loaded recorded state.
  EXPECT_GE(H.server().metrics().counterValue("persist.saved"), 1u);

  // The gc admin request reports a tree at or under the cap, and the
  // bytes on disk agree.
  H.send(adminLine("gc", "gc"));
  json::Value Gc = H.recv();
  ASSERT_EQ(Gc.find("status")->asString(), "ok");
  const json::Value &P = *Gc.find("gc");
  EXPECT_LE(P.find("bytes_after")->asInt(),
            static_cast<int64_t>(Cfg.CacheMaxBytes));
  EXPECT_LE(treeBytes(Dir), Cfg.CacheMaxBytes);

  H.finish();
  std::error_code EC;
  fs::remove_all(Dir, EC);
}

TEST(ServeShutdownTest, DrainAnswersEveryInFlightRequest) {
  ServerConfig Cfg;
  Cfg.TotalThreads = 2;
  Cfg.TestStartDelayMs = 200; // hold each run open
  ServeHarness H(Cfg);
  H.send(analyzeLine("f1", CountLoop));
  H.send(analyzeLine("f2", CountLoop));
  H.send(analyzeLine("f3", CountLoop));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  H.server().requestDrain(); // what SIGTERM does in syntox_serve
  auto ById = H.recvAll(3);
  ASSERT_EQ(ById.size(), 3u);
  for (const char *Id : {"f1", "f2", "f3"})
    EXPECT_EQ(ById[Id].find("status")->asString(), "ok") << Id;
  EXPECT_TRUE(H.finish()); // drained, not shut down by a client
}

TEST(ServeShutdownTest, ShutdownRequestStopsAfterDraining) {
  ServerConfig Cfg;
  Cfg.TestStartDelayMs = 100;
  ServeHarness H(Cfg);
  H.send(analyzeLine("last", CountLoop));
  H.send(adminLine("bye", "shutdown"));
  auto ById = H.recvAll(2);
  EXPECT_EQ(ById["bye"].find("status")->asString(), "ok");
  EXPECT_EQ(ById["last"].find("status")->asString(), "ok");
  EXPECT_FALSE(H.finish()); // serve() reports the client shutdown
}

TEST(ServeTimeoutTest, ExpiredQueuedRequestsAreShedAtAdmission) {
  ServerConfig Cfg;
  Cfg.TotalThreads = 1;
  Cfg.MaxConcurrentRequests = 1;
  Cfg.RequestTimeoutMs = 100;
  Cfg.TestStartDelayMs = 300; // the running request blocks the queue
  ServeHarness H(Cfg);
  H.send(analyzeLine("runs", CountLoop));
  H.send(analyzeLine("sheds", CountLoop));
  auto ById = H.recvAll(2);
  ASSERT_EQ(ById.size(), 2u);
  EXPECT_EQ(ById["runs"].find("status")->asString(), "ok");
  EXPECT_EQ(ById["sheds"].find("status")->asString(), "timeout");
  EXPECT_TRUE(ById["sheds"].has("error"));
  EXPECT_FALSE(ById["sheds"].has("findings"));
  EXPECT_GE(H.server().metrics().counterValue("serve.timeouts"), 1u);
}

TEST(ServeAdminTest, MetricsAndPing) {
  ServeHarness H(ServerConfig{});
  H.send(analyzeLine("one", CountLoop));
  ASSERT_EQ(H.recv().find("status")->asString(), "ok");
  H.send(adminLine("m", "metrics"));
  json::Value M = H.recv();
  ASSERT_EQ(M.find("status")->asString(), "ok");
  const json::Value &Counters = *M.find("metrics")->find("counters");
  ASSERT_TRUE(Counters.has("serve.requests"));
  EXPECT_GE(Counters.find("serve.requests")->asInt(), 1);
  H.send(adminLine("p", "ping"));
  EXPECT_EQ(H.recv().find("status")->asString(), "ok");
}

} // namespace
