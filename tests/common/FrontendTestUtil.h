//===- tests/common/FrontendTestUtil.h - Shared test helpers ----*- C++ -*-===//

#ifndef SYNTOX_TESTS_COMMON_FRONTENDTESTUTIL_H
#define SYNTOX_TESTS_COMMON_FRONTENDTESTUTIL_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace syntox {
namespace test {

/// Everything produced by running the frontend over a source string.
struct FrontendResult {
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<DiagnosticsEngine> Diags;
  RoutineDecl *Program = nullptr;
  std::vector<RoutineDecl *> Routines;
  bool SemaOk = false;
};

/// Lexes, parses, and (optionally) semantically checks \p Source.
inline FrontendResult runFrontend(const std::string &Source,
                                  bool RunSema = true) {
  FrontendResult Result;
  Result.Ctx = std::make_unique<AstContext>();
  Result.Diags = std::make_unique<DiagnosticsEngine>();
  Lexer Lex(Source, *Result.Diags);
  Parser P(Lex.lexAll(), *Result.Ctx, *Result.Diags);
  Result.Program = P.parseProgram();
  if (RunSema && Result.Program) {
    Sema S(*Result.Ctx, *Result.Diags);
    Result.SemaOk = S.analyze(Result.Program);
    Result.Routines = S.routines();
  }
  return Result;
}

/// Parses a source expected to be fully valid; fails the test otherwise.
inline FrontendResult parseValid(const std::string &Source) {
  FrontendResult Result = runFrontend(Source);
  EXPECT_TRUE(Result.Program != nullptr) << Result.Diags->str();
  EXPECT_FALSE(Result.Diags->hasErrors()) << Result.Diags->str();
  return Result;
}

} // namespace test
} // namespace syntox

#endif // SYNTOX_TESTS_COMMON_FRONTENDTESTUTIL_H
