//===- tests/common/RandomProgramGen.h - Random program source --*- C++ -*-===//

#ifndef SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
#define SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H

#include "support/Rng.h"

#include <cctype>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace syntox {
namespace test {

/// Generates random *terminating* Pascal programs over the integer
/// variables v0..v4 (plus dedicated loop counters), using only
/// constructs that always terminate and never fault: constant-bounded
/// for loops, if/else, assignments with +, -, * and division by
/// non-zero constants. Shared by the end-to-end soundness battery, the
/// warm-start differential battery and the demand-query battery.
///
/// With \p WithAssertions the programs additionally carry invariant
/// (`assert`) and intermittent assertions at random statement depths,
/// so the backward Always/Eventually phases of the refinement chain
/// have real work; the extra random draws happen only under the flag,
/// so assertion-free generation is bit-for-bit what it always was for
/// a given seed.
class ProgramGenerator {
public:
  /// Corpus families (bench_corpus traffic mix). Plain is the original
  /// generator; the rest stress specific engine paths:
  ///  - GotoHeavy: labeled segments with conditional forward gotos and
  ///    one counter-bounded backward goto (irreducible-looking control
  ///    flow, still terminating);
  ///  - DeepUnfolding: a chain of procedures with var parameters called
  ///    from several sites, multiplying unfolded instances (drives the
  ///    interprocedural token machinery and the adaptive cache);
  ///  - AliasingHeavy: small var-param routines invoked with
  ///    overlapping (and occasionally duplicate) actuals.
  enum class Family { Plain, GotoHeavy, DeepUnfolding, AliasingHeavy };

  static const char *familyName(Family F) {
    switch (F) {
    case Family::Plain:
      return "plain";
    case Family::GotoHeavy:
      return "goto";
    case Family::DeepUnfolding:
      return "unfold";
    case Family::AliasingHeavy:
      return "alias";
    }
    return "?";
  }

  explicit ProgramGenerator(uint64_t Seed, bool WithAssertions = false)
      : R(Seed), WithAssertions(WithAssertions) {}

  std::string generate() {
    Body.clear();
    LoopDepth = 0;
    Asserts = Intermittents = 0;
    std::string Out = "program gen;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    Out += "begin\n";
    for (int I = 0; I < 5; ++I)
      Body += "  v" + std::to_string(I) + " := " +
              std::to_string(R.range(-50, 50)) + ";\n";
    unsigned N = 3 + R.below(6);
    for (unsigned I = 0; I < N; ++I)
      statement(1);
    if (WithAssertions) {
      // Guarantee both assertion kinds so every generated program
      // exercises the Always *and* Eventually phases.
      if (Asserts == 0) {
        Body += "  assert(" + cond() + ");\n";
        ++Asserts;
      }
      if (Intermittents == 0) {
        Body += "  intermittent(" + cond() + ");\n";
        ++Intermittents;
      }
    }
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

  /// Family dispatch. Plain is byte-identical to generate() for the
  /// same seed; the other families draw their own random sequences.
  std::string generate(Family F) {
    switch (F) {
    case Family::Plain:
      return generate();
    case Family::GotoHeavy:
      return generateGotoHeavy();
    case Family::DeepUnfolding:
      return generateDeepUnfolding();
    case Family::AliasingHeavy:
      return generateAliasingHeavy();
    }
    return generate();
  }

  /// An edit sequence: the generated program followed by \p Edits
  /// successive single-literal mutations of it (each step edits its
  /// predecessor, modelling a user typing). Mutations only touch
  /// integer literals and never produce 0, so loop bounds stay
  /// constant and divisions stay total — every step of the sequence
  /// keeps the generator's termination/no-fault guarantees.
  std::vector<std::string> editSequence(unsigned Edits) {
    std::vector<std::string> Seq;
    Seq.push_back(generate());
    for (unsigned I = 0; I < Edits; ++I)
      Seq.push_back(mutateLiteral(Seq.back()));
    return Seq;
  }

  /// Single edit step on an arbitrary generated program (any family) —
  /// the bench_corpus edit wave applies this to already-analyzed
  /// sources to model warm re-analysis after a keystroke.
  std::string mutate(std::string Src) { return mutateLiteral(std::move(Src)); }

private:
  std::string var() { return "v" + std::to_string(R.below(5)); }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(2, 5)) {
      if (R.chance(1, 2))
        return std::to_string(R.range(-20, 20));
      return var();
    }
    std::string L = expr(Depth - 1);
    std::string Rhs = expr(Depth - 1);
    switch (R.below(4)) {
    case 0:
      return "(" + L + " + " + Rhs + ")";
    case 1:
      return "(" + L + " - " + Rhs + ")";
    case 2:
      return "(" + L + " * " + Rhs + ")";
    default:
      // Division by a non-zero constant keeps the program total.
      return "(" + L + " div " + std::to_string(R.range(1, 9)) + ")";
    }
  }

  std::string cond() {
    static const char *const Ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    return expr(1) + " " + Ops[R.below(6)] + " " + expr(1);
  }

  /// Replaces one random integer literal of \p Src with a fresh
  /// positive constant. Digit runs preceded by an identifier character
  /// are skipped (v0..v4 / l0..l2 are not literals), as are statement
  /// labels, goto targets and label declarations — mutating those would
  /// change control flow (or break it), not a value.
  std::string mutateLiteral(std::string Src) {
    std::vector<std::pair<size_t, size_t>> Lits;
    size_t LineStart = 0;
    bool LabelDeclLine = false;
    for (size_t I = 0; I < Src.size();) {
      if (Src[I] == '\n') {
        LineStart = ++I;
        LabelDeclLine = false;
        continue;
      }
      if (I == LineStart)
        LabelDeclLine = Src.compare(I, 6, "label ") == 0;
      bool AfterIdent =
          I > 0 && (std::isalnum(static_cast<unsigned char>(Src[I - 1])) ||
                    Src[I - 1] == '_');
      if (std::isdigit(static_cast<unsigned char>(Src[I])) && !AfterIdent) {
        size_t J = I;
        while (J < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[J])))
          ++J;
        bool IsLabel = J < Src.size() && Src[J] == ':';
        bool IsGotoTarget = I >= 5 && Src.compare(I - 5, 5, "goto ") == 0;
        if (!IsLabel && !IsGotoTarget && !LabelDeclLine)
          Lits.push_back({I, J - I});
        I = J;
      } else {
        ++I;
      }
    }
    if (Lits.empty())
      return Src;
    auto [Pos, Len] = Lits[R.below(Lits.size())];
    Src.replace(Pos, Len, std::to_string(R.range(1, 30)));
    return Src;
  }

  /// Shared prologue/epilogue for the family generators: the v0..v4
  /// initializers into Body, and the assertion guarantee of generate().
  void beginProgram() {
    Body.clear();
    Indent = 0;
    LoopDepth = 0;
    Asserts = Intermittents = 0;
    for (int I = 0; I < 5; ++I)
      Body += "  v" + std::to_string(I) + " := " +
              std::to_string(R.range(-50, 50)) + ";\n";
  }

  void guaranteeAssertions() {
    if (!WithAssertions)
      return;
    if (Asserts == 0) {
      Body += "  assert(" + cond() + ");\n";
      ++Asserts;
    }
    if (Intermittents == 0) {
      Body += "  intermittent(" + cond() + ");\n";
      ++Intermittents;
    }
  }

  /// Labeled segments, conditional forward gotos, and one backward goto
  /// bounded by a dedicated counter — control flow the structured
  /// statements never produce, but still provably terminating: l0
  /// increments exactly once per pass through the head label, forward
  /// jumps only skip work within a pass, and the single backward edge
  /// is guarded by l0's bound.
  std::string generateGotoHeavy() {
    beginProgram();
    unsigned Segs = 3 + R.below(3);
    std::string Out = "program gen;\nlabel ";
    for (unsigned S = 0; S < Segs; ++S)
      Out += std::to_string(10 * (S + 1)) + ", ";
    Out += "99;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    Out += "begin\n";
    // l0 is the backward-goto bound; start nested loops at l1 so no
    // generated for loop can clobber it (that would void termination).
    LoopDepth = 1;
    Body += "  l0 := 0;\n";
    Body += "  10: l0 := l0 + 1;\n";
    for (unsigned S = 0; S < Segs; ++S) {
      if (S > 0)
        Body += "  " + std::to_string(10 * (S + 1)) + ": " + var() +
                " := " + expr(1) + ";\n";
      unsigned N = 1 + R.below(3);
      for (unsigned I = 0; I < N; ++I)
        statement(1);
      if (S + 1 < Segs && R.chance(1, 2)) {
        unsigned Target = S + 1 + R.below(Segs - S - 1) + 1;
        Body += "  if " + cond() + " then goto " +
                std::to_string(10 * Target) + ";\n";
      }
    }
    Body += "  if l0 < " + std::to_string(2 + R.below(4)) +
            " then goto 10;\n";
    Body += "  99: v0 := v0 + 1;\n";
    guaranteeAssertions();
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

  /// A chain of procedures p1 <- p2 <- ... <- pD with var parameters,
  /// entered from several call sites (one inside a loop), so the
  /// context-sensitive unfolding multiplies activation instances —
  /// enough to cross the adaptive-cache instance threshold.
  std::string generateDeepUnfolding() {
    beginProgram();
    unsigned Depth = 8 + R.below(5);
    std::string Out = "program gen;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    for (unsigned P = 1; P <= Depth; ++P) {
      Out += "procedure p" + std::to_string(P) + "(var x : integer);\n";
      Out += "begin\n";
      Out += "  x := (x " + std::string(R.chance(1, 2) ? "+" : "-") + " " +
             std::to_string(R.range(1, 9)) + ")";
      if (P > 1)
        Out += ";\n  p" + std::to_string(P - 1) + "(x)\n";
      else
        Out += "\n";
      Out += "end;\n";
    }
    Body += "  p" + std::to_string(Depth) + "(v0);\n";
    Body += "  for l0 := 1 to " + std::to_string(2 + R.below(3)) +
            " do\n  begin\n    p" + std::to_string(Depth) +
            "(v1)\n  end;\n";
    unsigned N = 2 + R.below(3);
    for (unsigned I = 0; I < N; ++I)
      statement(1);
    guaranteeAssertions();
    Out += "begin\n";
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

  /// Small var-parameter routines invoked with overlapping (and
  /// sometimes duplicate) actuals: every call aliases formals onto the
  /// shared v0..v4 pool, exercising the token machinery's exact
  /// aliasing tracking from many angles.
  std::string generateAliasingHeavy() {
    beginProgram();
    unsigned Procs = 2 + R.below(2);
    std::string Out = "program gen;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    for (unsigned P = 0; P < Procs; ++P) {
      Out += "procedure q" + std::to_string(P) +
             "(var a : integer; var b : integer);\n";
      Out += "begin\n";
      Out += "  a := (a + b);\n";
      Out += "  b := (b - " + std::to_string(R.range(1, 9)) + ")\n";
      Out += "end;\n";
    }
    unsigned Calls = 4 + R.below(4);
    for (unsigned C = 0; C < Calls; ++C) {
      std::string A = var();
      // Duplicate actuals (a genuine alias of both formals) now and
      // then; otherwise a distinct second variable.
      std::string B = R.chance(1, 5) ? A : var();
      Body += "  q" + std::to_string(R.below(Procs)) + "(" + A + ", " + B +
              ");\n";
      if (R.chance(1, 2))
        statement(1);
    }
    guaranteeAssertions();
    Out += "begin\n";
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

  void statement(unsigned Depth) {
    if (WithAssertions && R.chance(1, 6)) {
      // Assertion at this random depth instead of a regular statement.
      indent();
      if (R.chance(1, 3)) {
        Body += "intermittent(" + cond() + ");\n";
        ++Intermittents;
      } else {
        Body += "assert(" + cond() + ");\n";
        ++Asserts;
      }
      return;
    }
    switch (R.below(Depth < 3 && LoopDepth < 2 ? 4 : 2)) {
    case 0:
    case 1: {
      indent();
      Body += var() + " := " + expr(2) + ";\n";
      return;
    }
    case 2: {
      indent();
      Body += "if " + cond() + " then\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end\n";
      indent();
      Body += "else\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    default: {
      std::string Counter = "l" + std::to_string(LoopDepth);
      int64_t Lo = R.range(-5, 5);
      int64_t Hi = Lo + R.range(0, 8);
      indent();
      Body += "for " + Counter + " := " + std::to_string(Lo) +
              (R.chance(1, 2) ? " to " : " downto ") + std::to_string(Hi) +
              " do\n";
      indent();
      Body += "begin\n";
      ++Indent;
      ++LoopDepth;
      statement(Depth + 1);
      if (R.chance(1, 2))
        statement(Depth + 1);
      --LoopDepth;
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    }
  }

  void indent() { Body += std::string(2 + 2 * Indent, ' '); }

  Rng R;
  bool WithAssertions = false;
  std::string Body;
  unsigned Indent = 0;
  unsigned LoopDepth = 0;
  unsigned Asserts = 0;
  unsigned Intermittents = 0;
};

} // namespace test
} // namespace syntox

#endif // SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
