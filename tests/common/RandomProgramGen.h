//===- tests/common/RandomProgramGen.h - Random program source --*- C++ -*-===//

#ifndef SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
#define SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H

#include "support/Rng.h"

#include <cctype>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace syntox {
namespace test {

/// Generates random *terminating* Pascal programs over the integer
/// variables v0..v4 (plus dedicated loop counters), using only
/// constructs that always terminate and never fault: constant-bounded
/// for loops, if/else, assignments with +, -, * and division by
/// non-zero constants. Shared by the end-to-end soundness battery, the
/// warm-start differential battery and the demand-query battery.
///
/// With \p WithAssertions the programs additionally carry invariant
/// (`assert`) and intermittent assertions at random statement depths,
/// so the backward Always/Eventually phases of the refinement chain
/// have real work; the extra random draws happen only under the flag,
/// so assertion-free generation is bit-for-bit what it always was for
/// a given seed.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed, bool WithAssertions = false)
      : R(Seed), WithAssertions(WithAssertions) {}

  std::string generate() {
    Body.clear();
    LoopDepth = 0;
    Asserts = Intermittents = 0;
    std::string Out = "program gen;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    Out += "begin\n";
    for (int I = 0; I < 5; ++I)
      Body += "  v" + std::to_string(I) + " := " +
              std::to_string(R.range(-50, 50)) + ";\n";
    unsigned N = 3 + R.below(6);
    for (unsigned I = 0; I < N; ++I)
      statement(1);
    if (WithAssertions) {
      // Guarantee both assertion kinds so every generated program
      // exercises the Always *and* Eventually phases.
      if (Asserts == 0) {
        Body += "  assert(" + cond() + ");\n";
        ++Asserts;
      }
      if (Intermittents == 0) {
        Body += "  intermittent(" + cond() + ");\n";
        ++Intermittents;
      }
    }
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

  /// An edit sequence: the generated program followed by \p Edits
  /// successive single-literal mutations of it (each step edits its
  /// predecessor, modelling a user typing). Mutations only touch
  /// integer literals and never produce 0, so loop bounds stay
  /// constant and divisions stay total — every step of the sequence
  /// keeps the generator's termination/no-fault guarantees.
  std::vector<std::string> editSequence(unsigned Edits) {
    std::vector<std::string> Seq;
    Seq.push_back(generate());
    for (unsigned I = 0; I < Edits; ++I)
      Seq.push_back(mutateLiteral(Seq.back()));
    return Seq;
  }

private:
  std::string var() { return "v" + std::to_string(R.below(5)); }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(2, 5)) {
      if (R.chance(1, 2))
        return std::to_string(R.range(-20, 20));
      return var();
    }
    std::string L = expr(Depth - 1);
    std::string Rhs = expr(Depth - 1);
    switch (R.below(4)) {
    case 0:
      return "(" + L + " + " + Rhs + ")";
    case 1:
      return "(" + L + " - " + Rhs + ")";
    case 2:
      return "(" + L + " * " + Rhs + ")";
    default:
      // Division by a non-zero constant keeps the program total.
      return "(" + L + " div " + std::to_string(R.range(1, 9)) + ")";
    }
  }

  std::string cond() {
    static const char *const Ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    return expr(1) + " " + Ops[R.below(6)] + " " + expr(1);
  }

  /// Replaces one random integer literal of \p Src with a fresh
  /// positive constant. Digit runs preceded by an identifier character
  /// are skipped (v0..v4 / l0..l2 are not literals).
  std::string mutateLiteral(std::string Src) {
    std::vector<std::pair<size_t, size_t>> Lits;
    for (size_t I = 0; I < Src.size();) {
      bool AfterIdent =
          I > 0 && (std::isalnum(static_cast<unsigned char>(Src[I - 1])) ||
                    Src[I - 1] == '_');
      if (std::isdigit(static_cast<unsigned char>(Src[I])) && !AfterIdent) {
        size_t J = I;
        while (J < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[J])))
          ++J;
        Lits.push_back({I, J - I});
        I = J;
      } else {
        ++I;
      }
    }
    if (Lits.empty())
      return Src;
    auto [Pos, Len] = Lits[R.below(Lits.size())];
    Src.replace(Pos, Len, std::to_string(R.range(1, 30)));
    return Src;
  }

  void statement(unsigned Depth) {
    if (WithAssertions && R.chance(1, 6)) {
      // Assertion at this random depth instead of a regular statement.
      indent();
      if (R.chance(1, 3)) {
        Body += "intermittent(" + cond() + ");\n";
        ++Intermittents;
      } else {
        Body += "assert(" + cond() + ");\n";
        ++Asserts;
      }
      return;
    }
    switch (R.below(Depth < 3 && LoopDepth < 2 ? 4 : 2)) {
    case 0:
    case 1: {
      indent();
      Body += var() + " := " + expr(2) + ";\n";
      return;
    }
    case 2: {
      indent();
      Body += "if " + cond() + " then\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end\n";
      indent();
      Body += "else\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    default: {
      std::string Counter = "l" + std::to_string(LoopDepth);
      int64_t Lo = R.range(-5, 5);
      int64_t Hi = Lo + R.range(0, 8);
      indent();
      Body += "for " + Counter + " := " + std::to_string(Lo) +
              (R.chance(1, 2) ? " to " : " downto ") + std::to_string(Hi) +
              " do\n";
      indent();
      Body += "begin\n";
      ++Indent;
      ++LoopDepth;
      statement(Depth + 1);
      if (R.chance(1, 2))
        statement(Depth + 1);
      --LoopDepth;
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    }
  }

  void indent() { Body += std::string(2 + 2 * Indent, ' '); }

  Rng R;
  bool WithAssertions = false;
  std::string Body;
  unsigned Indent = 0;
  unsigned LoopDepth = 0;
  unsigned Asserts = 0;
  unsigned Intermittents = 0;
};

} // namespace test
} // namespace syntox

#endif // SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
