//===- tests/common/RandomProgramGen.h - Random program source --*- C++ -*-===//

#ifndef SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
#define SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H

#include "support/Rng.h"

#include <cstdint>
#include <string>

namespace syntox {
namespace test {

/// Generates random *terminating* Pascal programs over the integer
/// variables v0..v4 (plus dedicated loop counters), using only
/// constructs that always terminate and never fault: constant-bounded
/// for loops, if/else, assignments with +, -, * and division by
/// non-zero constants. Shared by the end-to-end soundness battery and
/// the warm-start differential battery.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Body.clear();
    LoopDepth = 0;
    std::string Out = "program gen;\nvar v0, v1, v2, v3, v4 : integer;\n";
    Out += "    l0, l1, l2 : integer;\n";
    Out += "begin\n";
    for (int I = 0; I < 5; ++I)
      Body += "  v" + std::to_string(I) + " := " +
              std::to_string(R.range(-50, 50)) + ";\n";
    unsigned N = 3 + R.below(6);
    for (unsigned I = 0; I < N; ++I)
      statement(1);
    Out += Body;
    Out += "  writeln(v0, v1, v2, v3, v4)\nend.\n";
    return Out;
  }

private:
  std::string var() { return "v" + std::to_string(R.below(5)); }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(2, 5)) {
      if (R.chance(1, 2))
        return std::to_string(R.range(-20, 20));
      return var();
    }
    std::string L = expr(Depth - 1);
    std::string Rhs = expr(Depth - 1);
    switch (R.below(4)) {
    case 0:
      return "(" + L + " + " + Rhs + ")";
    case 1:
      return "(" + L + " - " + Rhs + ")";
    case 2:
      return "(" + L + " * " + Rhs + ")";
    default:
      // Division by a non-zero constant keeps the program total.
      return "(" + L + " div " + std::to_string(R.range(1, 9)) + ")";
    }
  }

  std::string cond() {
    static const char *const Ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    return expr(1) + " " + Ops[R.below(6)] + " " + expr(1);
  }

  void statement(unsigned Depth) {
    switch (R.below(Depth < 3 && LoopDepth < 2 ? 4 : 2)) {
    case 0:
    case 1: {
      indent();
      Body += var() + " := " + expr(2) + ";\n";
      return;
    }
    case 2: {
      indent();
      Body += "if " + cond() + " then\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end\n";
      indent();
      Body += "else\n";
      indent();
      Body += "begin\n";
      ++Indent;
      statement(Depth + 1);
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    default: {
      std::string Counter = "l" + std::to_string(LoopDepth);
      int64_t Lo = R.range(-5, 5);
      int64_t Hi = Lo + R.range(0, 8);
      indent();
      Body += "for " + Counter + " := " + std::to_string(Lo) +
              (R.chance(1, 2) ? " to " : " downto ") + std::to_string(Hi) +
              " do\n";
      indent();
      Body += "begin\n";
      ++Indent;
      ++LoopDepth;
      statement(Depth + 1);
      if (R.chance(1, 2))
        statement(Depth + 1);
      --LoopDepth;
      --Indent;
      indent();
      Body += "end;\n";
      return;
    }
    }
  }

  void indent() { Body += std::string(2 + 2 * Indent, ' '); }

  Rng R;
  std::string Body;
  unsigned Indent = 0;
  unsigned LoopDepth = 0;
};

} // namespace test
} // namespace syntox

#endif // SYNTOX_TESTS_COMMON_RANDOMPROGRAMGEN_H
