//===- tests/common/AnalysisTestUtil.h - Analysis test helpers --*- C++ -*-===//

#ifndef SYNTOX_TESTS_COMMON_ANALYSISTESTUTIL_H
#define SYNTOX_TESTS_COMMON_ANALYSISTESTUTIL_H

#include "cfg/CfgBuilder.h"
#include "semantics/Analyzer.h"

#include "FrontendTestUtil.h"

#include <gtest/gtest.h>

namespace syntox {
namespace test {

/// A fully analyzed program: frontend + CFG + analyzer results.
struct AnalyzedProgram {
  FrontendResult FE;
  std::unique_ptr<ProgramCfg> Cfg;
  std::unique_ptr<Analyzer> An;

  /// Finds a routine by name ("" = the program itself).
  RoutineDecl *routine(const std::string &Name) const {
    if (Name.empty())
      return FE.Program;
    for (RoutineDecl *R : FE.Routines)
      if (R->name() == Name)
        return R;
    return nullptr;
  }

  /// Finds a variable by name within a routine's owned variables, or in
  /// the program's globals when not found there.
  const VarDecl *var(const std::string &RoutineName,
                     const std::string &VarName) const {
    RoutineDecl *R = routine(RoutineName);
    if (!R)
      return nullptr;
    for (const VarDecl *V : R->ownedVars())
      if (V->name() == VarName)
        return V;
    for (const VarDecl *V : FE.Program->ownedVars())
      if (V->name() == VarName)
        return V;
    return nullptr;
  }

  /// Supergraph node of the \p Occurrence-th CFG point of instance
  /// \p InstIdx of \p RoutineName whose description contains
  /// \p DescSubstr.
  unsigned node(const std::string &RoutineName, const std::string &DescSubstr,
                unsigned InstIdx = 0, unsigned Occurrence = 0) const {
    RoutineDecl *R = routine(RoutineName);
    EXPECT_NE(R, nullptr) << "no routine " << RoutineName;
    unsigned Seen = 0;
    for (const Instance &Inst : An->graph().instances()) {
      if (Inst.R != R)
        continue;
      if (Seen++ != InstIdx)
        continue;
      unsigned Hits = 0;
      for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P)
        if (Inst.Cfg->pointDesc(P).find(DescSubstr) != std::string::npos &&
            Hits++ == Occurrence)
          return An->graph().node(Inst, P);
    }
    ADD_FAILURE() << "no point matching '" << DescSubstr << "' in "
                  << RoutineName;
    return 0;
  }

  Interval envInt(unsigned Node, const VarDecl *V) const {
    return An->storeOps().get(An->envelopeAt(Node), V).asInt();
  }
  Interval fwdInt(unsigned Node, const VarDecl *V) const {
    return An->storeOps().get(An->forwardAt(Node), V).asInt();
  }
  BoolLattice envBool(unsigned Node, const VarDecl *V) const {
    return An->storeOps().get(An->envelopeAt(Node), V).asBool();
  }
};

/// Fluent one-expression construction of AnalysisOptions, so tests
/// don't repeat the declare-mutate-pass boilerplate:
///   analyzeProgram(Src, withOptions().terminationGoal().backwardRounds(2))
/// The chainable setters live on AnalysisOptions itself now; this is
/// just the spelled-out starting point.
inline AnalysisOptions withOptions() { return {}; }

/// Runs the whole pipeline over \p Source.
inline AnalyzedProgram analyzeProgram(const std::string &Source,
                                      Analyzer::Options Opts = {}) {
  AnalyzedProgram Out;
  Out.FE = runFrontend(Source);
  EXPECT_TRUE(Out.FE.SemaOk) << Out.FE.Diags->str();
  if (!Out.FE.SemaOk)
    return Out;
  CfgBuilder Builder(*Out.FE.Ctx, *Out.FE.Diags);
  Out.Cfg = Builder.build(Out.FE.Program);
  Out.An = std::make_unique<Analyzer>(*Out.Cfg, Out.FE.Program, Opts);
  Out.An->run();
  return Out;
}

/// Runs a second analysis over an already-built frontend + CFG. The
/// returned analyzer shares \p P's AST, so its stores are comparable
/// key-by-key with \p P.An's (a fresh analyzeProgram() call would
/// allocate distinct VarDecls, making StoreOps::equal vacuously false).
inline std::unique_ptr<Analyzer> reanalyze(const AnalyzedProgram &P,
                                           Analyzer::Options Opts = {}) {
  auto An = std::make_unique<Analyzer>(*P.Cfg, P.FE.Program, Opts);
  An->run();
  return An;
}

} // namespace test
} // namespace syntox

#endif // SYNTOX_TESTS_COMMON_ANALYSISTESTUTIL_H
