#!/usr/bin/env bash
# Full pre-merge check: warnings-as-errors build + tests (ci preset),
# race-checked build + tests (tsan preset), memory/UB-checked
# fixpoint+semantics suites (asan preset), then an end-to-end telemetry
# smoke test that validates the CLI's trace/metrics/findings output
# against the documented schemas in schemas/.
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan]

set -euo pipefail
cd "$(dirname "$0")/.."

NO_TSAN=0
NO_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) NO_TSAN=1 ;;
    --no-asan) NO_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

run_preset() {
  local preset=$1
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset"
}

run_preset ci
if [ "$NO_TSAN" -eq 0 ]; then
  run_preset tsan
fi
if [ "$NO_ASAN" -eq 0 ]; then
  # ASan+UBSan over the suites that exercise the solver and the
  # semantics layer (including the demand-driven query battery).
  echo "== preset: asan (fixpoint/semantics suites) =="
  ASAN_SUITES="wto_test solver_test parallel_solver_test analyzer_test
               transfer_test interproc_test store_test store_cow_test
               store_soa_test expr_semantics_test soundness_test
               demand_query_test liveness_prune_test serve_test"
  cmake --preset asan
  # shellcheck disable=SC2086
  cmake --build build-asan -j "$(nproc)" --target $ASAN_SUITES syntox_serve
  for suite in $ASAN_SUITES; do
    echo "-- asan: $suite"
    # ASan redzones inflate the concrete interpreter's recursive eval
    # frames ~8x; the recursion depth is program-bounded, so give the
    # sanitized runs a larger stack instead of capping the programs.
    (ulimit -s 65536; exec "build-asan/tests/$suite" --gtest_brief=1)
  done
fi

echo "== telemetry smoke test =="
CLI=build-ci/examples/syntox_cli
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

cat > "$OUT/for.pas" <<'EOF'
program forprog;
var i, n : integer;
    T : array [1..100] of integer;
begin
  read(n);
  for i := 0 to n do
    read(T[i])
end.
EOF

"$CLI" --format=json --metrics-json="$OUT/metrics.json" \
       --trace="$OUT/trace.jsonl" --trace-format=json \
       "$OUT/for.pas" > "$OUT/findings.json"
"$CLI" --strategy=parallel --threads=4 \
       --trace="$OUT/trace-chrome.json" --trace-format=chrome \
       "$OUT/for.pas" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def load_schema(path):
    with open(path) as f:
        return json.load(f)

def check(cond, what):
    if not cond:
        raise SystemExit(f"schema violation: {what}")

def validate(obj, schema, where):
    for key in schema.get("required", []):
        check(key in obj, f"{where}: missing required key '{key}'")
    props = schema.get("properties", {})
    if schema.get("additionalProperties") is False:
        for key in obj:
            check(key in props, f"{where}: unexpected key '{key}'")
    for key, sub in props.items():
        if key not in obj:
            continue
        v, w = obj[key], f"{where}.{key}"
        if "enum" in sub:
            check(v in sub["enum"], f"{w}: '{v}' not in enum")
        t = sub.get("type")
        if t == "integer":
            check(isinstance(v, int) and not isinstance(v, bool), f"{w}: not an integer")
        elif t == "number":
            check(isinstance(v, (int, float)) and not isinstance(v, bool), f"{w}: not a number")
        elif t == "string":
            check(isinstance(v, str), f"{w}: not a string")
        elif t == "boolean":
            check(isinstance(v, bool), f"{w}: not a boolean")
        elif t == "array":
            check(isinstance(v, list), f"{w}: not an array")
            for i, e in enumerate(v):
                validate(e, sub.get("items", {}), f"{w}[{i}]")
        elif t == "object":
            check(isinstance(v, dict), f"{w}: not an object")
            validate(v, sub, w)
        if "minimum" in sub and isinstance(v, (int, float)):
            check(v >= sub["minimum"], f"{w}: {v} < minimum {sub['minimum']}")

# JSON-lines trace: every line validates against the event schema and
# timestamps are globally ordered.
trace_schema = load_schema("schemas/trace-jsonl.schema.json")
last_t = 0
n = 0
with open(f"{out}/trace.jsonl") as f:
    for n, line in enumerate(f, 1):
        ev = json.loads(line)
        validate(ev, trace_schema, f"trace.jsonl:{n}")
        check(ev["t"] >= last_t, f"trace.jsonl:{n}: timestamps out of order")
        last_t = ev["t"]
check(n > 0, "trace.jsonl: empty trace")

# Chrome trace: the document shape chrome://tracing expects, with
# balanced B/E spans per thread.
with open(f"{out}/trace-chrome.json") as f:
    doc = json.load(f)
check(isinstance(doc.get("traceEvents"), list) and doc["traceEvents"],
      "trace-chrome.json: no traceEvents")
depth = {}
for e in doc["traceEvents"]:
    for key in ("ph", "name", "ts", "pid", "tid"):
        check(key in e, f"trace-chrome.json: event missing '{key}'")
    if e["ph"] == "B":
        depth[e["tid"]] = depth.get(e["tid"], 0) + 1
    elif e["ph"] == "E":
        depth[e["tid"]] = depth.get(e["tid"], 0) - 1
        check(depth[e["tid"]] >= 0, "trace-chrome.json: E before B")
check(all(d == 0 for d in depth.values()), "trace-chrome.json: unbalanced spans")

# Findings document (includes the metrics snapshot) and the standalone
# metrics file.
findings_schema = load_schema("schemas/findings.schema.json")
with open(f"{out}/findings.json") as f:
    findings = json.load(f)
validate(findings, findings_schema, "findings.json")
check(findings["conditions"], "findings.json: For program must yield a condition")
with open(f"{out}/metrics.json") as f:
    metrics = json.load(f)
validate(metrics, findings_schema["properties"]["metrics"], "metrics.json")
check(metrics["counters"].get("solver.ascending_steps", 0) > 0,
      "metrics.json: no solver work recorded")

print(f"telemetry smoke test OK ({n} trace events)")
EOF

echo "== store-kernel perf floor =="
# Perf-regression smoke for the SoA lattice kernels: bench_store must
# not fall more than 25% below the checked-in floor
# (bench/BENCH_store.floor.json — refresh it when the kernels get
# faster). Only the ci (unsanitized) binary is measured; the tsan and
# asan presets never reach this stanza, so sanitizer overhead can not
# trip the floor.
build-ci/bench/bench_store --out="$OUT/BENCH_store_check.json" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"store perf floor violation: {what}")

with open("bench/BENCH_store.floor.json") as f:
    floors = json.load(f)
with open(f"{out}/BENCH_store_check.json") as f:
    report = json.load(f)

rows = {r["size"]: r for r in report["rows"]}
checked = 0
for frow in floors["rows"]:
    size = frow["size"]
    check(size in rows, f"bench_store reported no size-{size} row")
    for col, floor in frow.items():
        if col == "size":
            continue
        got = rows[size].get(col)
        check(got is not None, f"size {size}: missing column '{col}'")
        check(got >= floor * 0.75,
              f"size {size} {col}: {got:,.0f} ops/s is more than 25% below "
              f"the floor {floor:,.0f}")
        checked += 1

print(f"store perf floor OK ({checked} cells within 25% of the floor)")
EOF

echo "== incremental-solving smoke test =="
build-ci/bench/bench_incremental --out="$OUT/BENCH_incremental.json" \
    --bench-rounds=3 > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"bench_incremental violation: {what}")

with open("schemas/bench.schema.json") as f:
    schema = json.load(f)
with open(f"{out}/BENCH_incremental.json") as f:
    report = json.load(f)

for key in schema["required"]:
    check(key in report, f"missing required key '{key}'")
check(report["benchmark"] == "bench_incremental", "wrong benchmark name")
check(isinstance(report["rows"], list) and report["rows"], "no rows")
for i, row in enumerate(report["rows"]):
    check(isinstance(row, dict), f"rows[{i}] not an object")
    for col in ("family", "k", "round", "cold_evals", "warm_evals",
                "warm_component_skips", "warm_skipped_evals"):
        check(col in row, f"rows[{i}] missing '{col}'")
for a in report["analyses"]:
    for key in ("label", "seconds", "stats"):
        check(key in a, f"analysis entry missing '{key}'")
check("counters" in report["metrics"], "metrics missing counters")

# The acceptance claim: from round 2 on, warm starts cut the live
# evaluations at least 2x on both families (full replay counts as inf).
families = set()
for row in report["rows"]:
    families.add(row["family"])
    if row["round"] >= 2:
        check(row["warm_evals"] * 2 <= row["cold_evals"],
              f"{row['family']}/{row['k']} round {row['round']}: "
              f"warm {row['warm_evals']} vs cold {row['cold_evals']} "
              "is under a 2x reduction")
check(families == {"loopChain", "mcCarthy"}, f"unexpected families {families}")

print("incremental-solving smoke test OK "
      f"({len(report['rows'])} rows, both families >= 2x from round 2)")
EOF

echo "== persistent-cache smoke test =="
cat > "$OUT/two.pas" <<'EOF'
program two;
var a, b : integer;

procedure p1(var x : integer);
var i : integer;
begin
  i := 0;
  while i < 50 do begin
    i := i + 1;
    x := i
  end
end;

procedure p2(var y : integer);
var j : integer;
begin
  j := 10;
  while j > 0 do begin
    j := j - 1;
    y := j
  end
end;

begin
  a := 0;
  b := 0;
  p1(a);
  p2(b);
  assert(a >= 0);
  assert(b >= 0)
end.
EOF
sed 's/j := 10/j := 20/' "$OUT/two.pas" > "$OUT/two-edited.pas"

CACHE="$OUT/cache"
"$CLI" --cache-dir="$CACHE" --format=json \
       --metrics-json="$OUT/persist-cold.json" "$OUT/two.pas" \
       > "$OUT/persist-findings-cold.json"
"$CLI" --cache-dir="$CACHE" --format=json \
       --metrics-json="$OUT/persist-warm.json" "$OUT/two.pas" \
       > "$OUT/persist-findings-warm.json"
"$CLI" --cache-dir="$CACHE" --format=json \
       --metrics-json="$OUT/persist-edit.json" "$OUT/two-edited.pas" \
       > "$OUT/persist-findings-edit.json"
"$CLI" --format=json --metrics-json="$OUT/persist-editcold.json" \
       "$OUT/two-edited.pas" > "$OUT/persist-findings-editcold.json"

python3 - "$OUT" <<'EOF'
import glob, json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"persistent-cache violation: {what}")

def counters(path):
    with open(path) as f:
        return json.load(f)["counters"]

def live_steps(c):
    return c.get("solver.ascending_steps", 0) + c.get("solver.descending_steps", 0)

def findings(path):
    with open(path) as f:
        doc = json.load(f)
    return {k: v for k, v in doc.items() if k not in ("stats", "metrics")}

cold = counters(f"{out}/persist-cold.json")
warm = counters(f"{out}/persist-warm.json")
edit = counters(f"{out}/persist-edit.json")
editcold = counters(f"{out}/persist-editcold.json")

# Run 1 saved, run 2 replayed the whole chain: zero live solver steps,
# every component skipped, identical findings.
check(cold.get("persist.saved") == 1, "run 1 did not save a cache")
check(warm.get("persist.loaded") == 1, "run 2 did not load the cache")
check(live_steps(cold) > 0, "cold run did no solver work")
check(live_steps(warm) == 0,
      f"unchanged rerun performed {live_steps(warm)} live solver steps")
check(warm.get("solver.component_skips", 0) > 0, "rerun replayed nothing")
check(findings(f"{out}/persist-findings-cold.json")
      == findings(f"{out}/persist-findings-warm.json"),
      "replayed findings differ from cold findings")

# Editing one routine of two: the cache still loads, only the changed
# routine's components (and what its values feed) re-solve, and the
# findings equal an uncached run of the edited program.
check(edit.get("persist.loaded") == 1, "edited run did not load the cache")
check(edit.get("persist.invalidated_nodes", 0) > 0,
      "edit invalidated no nodes")
check(edit.get("persist.matched_elements", 0) > 0,
      "edit run matched no elements (cache was useless)")
check(0 < live_steps(edit) < live_steps(editcold),
      f"edited run did {live_steps(edit)} live steps vs cold "
      f"{live_steps(editcold)}: expected a strict partial re-solve")
check(findings(f"{out}/persist-findings-edit.json")
      == findings(f"{out}/persist-findings-editcold.json"),
      "edited-warm findings differ from edited-cold findings")

# The .meta.json sidecar matches schemas/cache.schema.json.
with open("schemas/cache.schema.json") as f:
    schema = json.load(f)
sidecars = glob.glob(f"{out}/cache/*.meta.json")
check(sidecars, "no .meta.json sidecar written")
import re
for path in sidecars:
    with open(path) as f:
        meta = json.load(f)
    for key in schema["required"]:
        check(key in meta, f"{path}: missing '{key}'")
    for key in meta:
        check(key in schema["properties"], f"{path}: unexpected key '{key}'")
    for key, sub in schema["properties"].items():
        v = meta[key]
        if sub["type"] == "integer":
            check(isinstance(v, int) and not isinstance(v, bool),
                  f"{path}.{key}: not an integer")
            check(v >= sub.get("minimum", v), f"{path}.{key}: below minimum")
        else:
            check(isinstance(v, str), f"{path}.{key}: not a string")
            if "pattern" in sub:
                check(re.fullmatch(sub["pattern"], v),
                      f"{path}.{key}: '{v}' fails pattern")
            if "enum" in sub:
                check(v in sub["enum"], f"{path}.{key}: '{v}' not in enum")

print("persistent-cache smoke test OK "
      f"(replay: {warm.get('solver.component_skips', 0)} skips, edit: "
      f"{live_steps(edit)}/{live_steps(editcold)} live steps)")
EOF

echo "== persistence benchmark =="
build-ci/bench/bench_persist --out="$OUT/BENCH_persist.json" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"bench_persist violation: {what}")

with open("schemas/bench.schema.json") as f:
    schema = json.load(f)
with open(f"{out}/BENCH_persist.json") as f:
    report = json.load(f)

for key in schema["required"]:
    check(key in report, f"missing required key '{key}'")
check(report["benchmark"] == "bench_persist", "wrong benchmark name")
check(isinstance(report["rows"], list) and report["rows"], "no rows")
for i, row in enumerate(report["rows"]):
    for col in ("family", "k", "cold_evals", "persisted_evals",
                "persisted_replays", "edited_evals", "edited_cold_evals"):
        check(col in row, f"rows[{i}] missing '{col}'")
    # The acceptance claim: a rerun of the unchanged program replays the
    # whole refinement chain from disk.
    check(row["persisted_evals"] == 0,
          f"{row['family']}/{row['k']}: unchanged rerun performed "
          f"{row['persisted_evals']} live evaluations")
    check(row["persisted_replays"] > 0,
          f"{row['family']}/{row['k']}: no components replayed")
for a in report["analyses"]:
    for key in ("label", "seconds", "stats"):
        check(key in a, f"analysis entry missing '{key}'")

print(f"persistence benchmark OK ({len(report['rows'])} rows, all "
      "unchanged reruns at 0 live evaluations)")
EOF

echo "== demand-query smoke test =="
# CLI query path: a demanded point answer must come back with a strict
# non-empty subset of components scheduled (the solved-cone claim, read
# off the demand stats).
"$CLI" --query=point:9 --format=json "$OUT/two.pas" > "$OUT/demand-point.json"

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"demand query violation: {what}")

with open(f"{out}/demand-point.json") as f:
    doc = json.load(f)
check(doc["query"]["kind"] == "point", "wrong query kind")
check(doc["query"]["line"] == 9, "wrong query line")
check(isinstance(doc["states"], list) and doc["states"],
      "point query returned no states")
stats = doc["stats"]
check(stats["demanded_components"] > 0, "no components demanded")
check(stats["skipped_by_demand"] > 0,
      "no components skipped: the demand cone was not a strict subset")

print("demand CLI smoke OK "
      f"({stats['demanded_components']} demanded, "
      f"{stats['skipped_by_demand']} skipped)")
EOF

build-ci/bench/bench_demand --out="$OUT/BENCH_demand.json" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"bench_demand violation: {what}")

with open("schemas/bench.schema.json") as f:
    schema = json.load(f)
with open(f"{out}/BENCH_demand.json") as f:
    report = json.load(f)

for key in schema["required"]:
    check(key in report, f"missing required key '{key}'")
check(report["benchmark"] == "bench_demand", "wrong benchmark name")
check(isinstance(report["rows"], list) and report["rows"], "no rows")
families = set()
for i, row in enumerate(report["rows"]):
    for col in ("family", "k", "query", "cold_evals", "demand_evals",
                "warm_demand_evals", "demanded_components",
                "skipped_components"):
        check(col in row, f"rows[{i}] missing '{col}'")
    families.add(row["family"])
    where = f"{row['family']}/{row['k']} {row['query']}"
    # The solved-cone-is-a-strict-subset claim, on every query.
    check(row["demanded_components"] > 0, f"{where}: no components demanded")
    check(row["skipped_components"] > 0,
          f"{where}: no components skipped (cone == whole program)")
    # A demand solve never does more live work than a full solve.
    check(row["demand_evals"] <= row["cold_evals"],
          f"{where}: demand {row['demand_evals']} > cold {row['cold_evals']}")
    # The acceptance claim: a cache-warmed demand query costs at least
    # 2x fewer live evaluations than a cold full solve.
    check(row["warm_demand_evals"] * 2 <= row["cold_evals"],
          f"{where}: warm demand {row['warm_demand_evals']} vs cold "
          f"{row['cold_evals']} is under a 2x reduction")
check(families == {"loopChain", "dispatchChain", "mcCarthy"},
      f"unexpected families {families}")
check(any(r["family"] == "loopChain" and r["query"] == "check:far"
          for r in report["rows"]),
      "missing the far-end assertion query on loopChain")
for a in report["analyses"]:
    for key in ("label", "seconds", "stats"):
        check(key in a, f"analysis entry missing '{key}'")

print(f"demand benchmark OK ({len(report['rows'])} rows, every query a "
      "strict subset, warm queries >= 2x under cold full solves)")
EOF

echo "== batch-corpus smoke test =="
# A small corpus through both serving paths: the binary itself exits
# non-zero if any batch wave's findings diverge from the sequential
# reference, and the report it writes is validated against the bench
# schema below. (The owned-cache merge protocol and the shared thread
# budget get their concurrency stress from cache_owned_test and
# batch_test, which the tsan preset above runs with the rest of ctest.)
build-ci/bench/bench_corpus --programs=24 --batch=4 \
    --out="$OUT/BENCH_corpus.json" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

def check(cond, what):
    if not cond:
        raise SystemExit(f"bench_corpus violation: {what}")

with open("schemas/bench.schema.json") as f:
    schema = json.load(f)
with open(f"{out}/BENCH_corpus.json") as f:
    report = json.load(f)

for key in schema["required"]:
    check(key in report, f"missing required key '{key}'")
check(report["benchmark"] == "bench_corpus", "wrong benchmark name")
check(isinstance(report["rows"], list) and report["rows"], "no rows")
waves = set()
for i, row in enumerate(report["rows"]):
    for col in ("wave", "mode", "programs", "seconds", "programs_per_sec",
                "p50_ms", "p99_ms", "cache_hits", "cache_misses"):
        check(col in row, f"rows[{i}] missing '{col}'")
    waves.add((row["wave"], row["mode"]))
    # The determinism claim, per wave: batch findings are bitwise equal
    # to the sequential reference on cold, warm, and edit traffic.
    if row["mode"] == "batch":
        check(row.get("matches_sequential") is True,
              f"{row['wave']}/batch findings diverge from sequential")
check(waves == {(w, m) for w in ("cold", "warm", "edit")
                for m in ("seq", "batch")} | {("prime", "seq")},
      f"unexpected wave coverage {sorted(waves)}")
check(report["batch_matches_sequential"] is True,
      "batch_matches_sequential is not true")
# The throughput claim only makes sense with real parallel hardware:
# on a single-core host the batch path measures overlap overhead, so
# the wall-clock assertion is gated on hardware_threads >= 2.
if report["hardware_threads"] >= 2:
    check(report["aggregate_speedup"] > 1.0,
          f"aggregate batch speedup {report['aggregate_speedup']:.2f}x "
          f"on {report['hardware_threads']} hardware threads")
    print("batch-corpus smoke test OK "
          f"({len(report['rows'])} waves, batch == sequential, "
          f"{report['aggregate_speedup']:.2f}x aggregate)")
else:
    print("batch-corpus smoke test OK "
          f"({len(report['rows'])} waves, batch == sequential; "
          "single hardware thread, throughput assertion skipped)")
EOF

echo "== serve smoke test =="
# The analysis daemon end to end, under the ci binary and (unless
# disabled) the asan one: cold + warm + malformed + admin traffic over
# stdio with every response validated against the serve schemas, then a
# SIGTERM drain with a request in flight.
serve_smoke() {
  local bin=$1 tag=$2
  echo "-- serve smoke: $tag"
  local dir="$OUT/serve-$tag"
  mkdir -p "$dir/cache"

  # Sleeps order the traffic so the inline metrics answer observes the
  # earlier analyses (responses themselves are unordered by contract).
  {
    printf '%s\n' '{"protocol_version":1,"id":"cold","source":"program p; var i, n : integer; begin read(n); i := 0; while i < n do begin i := i + 1; assert(i >= 1) end end.","cache_key":"doc"}'
    sleep 1
    printf '%s\n' '{"protocol_version":1,"id":"warm","source":"program p; var i, n : integer; begin read(n); i := 0; while i < n do begin i := i + 1; assert(i >= 1) end end.","cache_key":"doc"}'
    sleep 1
    printf '%s\n' 'this line is not a request'
    printf '%s\n' '{"protocol_version":1,"id":"badopt","source":"program p; begin end.","options":{"cache_dir":"/tmp/x"}}'
    printf '%s\n' '{"protocol_version":1,"id":"sweep","kind":"gc"}'
    printf '%s\n' '{"protocol_version":1,"id":"snap","kind":"metrics"}'
    printf '%s\n' '{"protocol_version":1,"id":"alive","kind":"ping"}'
  } | "$bin" --cache-dir="$dir/cache" --cache-max-bytes=65536 \
      > "$dir/responses.jsonl"

  python3 - "$dir/responses.jsonl" <<'PYEOF'
import json, sys

def check(cond, what):
    if not cond:
        raise SystemExit(f"serve smoke violation: {what}")

def load_schema(path):
    with open(path) as f:
        return json.load(f)

resp_schema = load_schema("schemas/serve-response.schema.json")
findings_schema = load_schema("schemas/findings.schema.json")

def validate(obj, schema, where):
    if "$ref" in schema:
        check(schema["$ref"] == "findings.schema.json",
              f"{where}: unknown $ref {schema['$ref']}")
        schema = findings_schema
    if "const" in schema:
        check(obj == schema["const"], f"{where}: != const {schema['const']}")
    if "enum" in schema:
        check(obj in schema["enum"], f"{where}: '{obj}' not in enum")
    t = schema.get("type")
    if t == "integer":
        check(isinstance(obj, int) and not isinstance(obj, bool),
              f"{where}: not an integer")
    elif t == "number":
        check(isinstance(obj, (int, float)) and not isinstance(obj, bool),
              f"{where}: not a number")
    elif t == "string":
        check(isinstance(obj, str), f"{where}: not a string")
    elif t == "boolean":
        check(isinstance(obj, bool), f"{where}: not a boolean")
    elif t == "array":
        check(isinstance(obj, list), f"{where}: not an array")
        for i, e in enumerate(obj):
            validate(e, schema.get("items", {}), f"{where}[{i}]")
    elif t == "object" or "properties" in schema or "required" in schema:
        check(isinstance(obj, dict), f"{where}: not an object")
        for key in schema.get("required", []):
            check(key in obj, f"{where}: missing required key '{key}'")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in obj:
                check(key in props, f"{where}: unexpected key '{key}'")
        for key, sub in props.items():
            if key in obj:
                validate(obj[key], sub, f"{where}.{key}")
    if "minimum" in schema and isinstance(obj, (int, float)):
        check(obj >= schema["minimum"],
              f"{where}: {obj} < minimum {schema['minimum']}")

by_id = {}
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        resp = json.loads(line)
        validate(resp, resp_schema, f"responses:{n}")
        by_id[resp["id"]] = resp

check(set(by_id) == {"cold", "warm", "", "badopt", "sweep", "snap", "alive"},
      f"unexpected response ids {sorted(by_id)}")

def findings(resp):
    return {k: v for k, v in resp["findings"].items()
            if k not in ("stats", "metrics")}

check(by_id["cold"]["status"] == "ok", "cold analyze failed")
check(by_id["warm"]["status"] == "ok", "warm analyze failed")
check(findings(by_id["cold"]) == findings(by_id["warm"]),
      "warm findings differ from cold findings")
check(by_id[""]["status"] == "error", "malformed line not answered error")
check(by_id["badopt"]["status"] == "error"
      and "cache_key" in by_id["badopt"]["error"],
      "wire cache_dir option not rejected")
check(by_id["sweep"]["gc"]["max_bytes"] == 65536, "gc cap not reported")
counters = by_id["snap"]["metrics"]["counters"]
check(counters.get("serve.session_hits", 0) >= 1,
      "warm resubmission did not hit the parked session")
check(counters.get("session.engine_reuses", 0) >= 1,
      "warm resubmission did not reuse the engine")
check(counters.get("persist.saved", 0) >= 1, "no cache save recorded")
check(by_id["alive"]["status"] == "ok", "ping failed")

print(f"serve traffic OK ({len(by_id)} responses, warm == cold, "
      f"{counters.get('serve.session_hits', 0)} session hits)")
PYEOF

  # SIGTERM drain: the daemon holds one request in flight (start delay),
  # gets the signal, and must still answer it and exit 0.
  mkfifo "$dir/in"
  "$bin" --test-start-delay-ms=300 < "$dir/in" > "$dir/drain.jsonl" &
  local pid=$!
  exec 3>"$dir/in"
  printf '%s\n' '{"protocol_version":1,"id":"inflight","source":"program p; var i : integer; begin i := 0; while i < 10 do i := i + 1 end."}' >&3
  sleep 0.1
  kill -TERM "$pid"
  local rc=0
  wait "$pid" || rc=$?
  exec 3>&-
  if [ "$rc" -ne 0 ]; then
    echo "serve smoke violation: SIGTERM drain exited $rc" >&2
    exit 1
  fi
  python3 - "$dir/drain.jsonl" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f]
if len(lines) != 1 or lines[0]["id"] != "inflight" or lines[0]["status"] != "ok":
    raise SystemExit("serve smoke violation: in-flight request not answered "
                     f"across SIGTERM drain: {lines}")
print("SIGTERM drain OK (in-flight request answered, exit 0)")
PYEOF
}

serve_smoke build-ci/src/serve/syntox_serve ci
if [ "$NO_ASAN" -eq 0 ]; then
  (ulimit -s 65536; serve_smoke build-asan/src/serve/syntox_serve asan)
fi

echo "ALL CHECKS PASSED"
