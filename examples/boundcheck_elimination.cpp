//===- examples/boundcheck_elimination.cpp - Paper §6.5 / Figure 3 --------===//
//
// The second use of Syntox (paper §6.5): prove array accesses statically
// correct so a compiler can drop the bound checks. This example
//  1. classifies every runtime check of BinarySearch, HeapSort,
//     QuickSort and BubbleSort,
//  2. runs each program concretely with and without the checks that the
//     analysis discharged, verifying identical outputs,
//  3. reports the speedup (paper: 30-40% on compiled Pascal).
//
// Build & run:  ./build/examples/boundcheck_elimination
//
//===----------------------------------------------------------------------===//

#include "checks/CheckAnalysis.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>

using namespace syntox;

namespace {

std::vector<int64_t> makeInputs(const char *Name, Rng &R) {
  std::vector<int64_t> Inputs;
  if (std::string(Name) == "binarysearch") {
    Inputs.push_back(100); // n
    Inputs.push_back(R.range(0, 300)); // key
    int64_t V = 0;
    for (int I = 0; I < 100; ++I)
      Inputs.push_back(V += R.range(0, 5)); // sorted values
    return Inputs;
  }
  Inputs.push_back(100);
  for (int I = 0; I < 100; ++I)
    Inputs.push_back(R.range(-1000, 1000));
  return Inputs;
}

double timeRuns(const Interpreter &I, const std::vector<int64_t> &Inputs,
                bool Checks, int Repeats) {
  Interpreter::Options Opts;
  Opts.Inputs = Inputs;
  Opts.EnableChecks = Checks;
  auto Start = std::chrono::steady_clock::now();
  for (int K = 0; K < Repeats; ++K) {
    Interpreter::Result R = I.run(Opts);
    if (R.St != Interpreter::Status::Ok) {
      std::fprintf(stderr, "unexpected failure: %s\n", R.Error.c_str());
      return -1;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main() {
  std::printf("=== Array bound check elimination (paper 6.5, Figure 3) "
              "===\n\n");
  struct Case {
    const char *Name;
    const char *Source;
  } Cases[] = {
      {"binarysearch", paper::BinarySearchProgram},
      {"heapsort", paper::HeapSortProgram},
      {"bubblesort", paper::BubbleSortProgram},
      {"quicksort", paper::QuickSortProgram},
  };

  Rng R(4242);
  for (const Case &C : Cases) {
    DiagnosticsEngine Diags;
    auto Dbg = AbstractDebugger::create(C.Source, Diags);
    if (!Dbg) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      continue;
    }
    Dbg->analyze();
    CheckSummary S = Dbg->checks().summary();
    std::printf("%-14s checks: %2u total, %2u proved safe, %u unreachable, "
                "%u dynamic  %s\n",
                C.Name, S.Total, S.Safe, S.Unreachable,
                S.MayFail + S.MustFail,
                Dbg->checks().allSafe() ? "[all array accesses proved]"
                                        : "");

    // Concrete timing with and without the (justified) checks.
    Interpreter I(Dbg->program());
    std::vector<int64_t> Inputs = makeInputs(C.Name, R);

    // Verify semantic equivalence first.
    Interpreter::Options VerifyOpts;
    VerifyOpts.Inputs = Inputs;
    Interpreter::Result Checked = I.run(VerifyOpts);
    VerifyOpts.EnableChecks = false;
    Interpreter::Result Unchecked = I.run(VerifyOpts);
    if (Checked.Output != Unchecked.Output) {
      std::printf("  output mismatch after elimination!\n");
      continue;
    }

    const int Repeats = 300;
    double With = timeRuns(I, Inputs, /*Checks=*/true, Repeats);
    double Without = timeRuns(I, Inputs, /*Checks=*/false, Repeats);
    if (With > 0 && Without > 0)
      std::printf("  %d runs: %.4fs with checks, %.4fs without -> "
                  "%.1f%% speedup\n",
                  Repeats, With, Without, 100.0 * (With - Without) / With);
  }
  std::printf("\n(paper: a 30-40%% speedup on compiled Pascal; the shape "
              "to compare is\n checked > unchecked with a double-digit "
              "percentage gap)\n");
  return 0;
}
