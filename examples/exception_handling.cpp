//===- examples/exception_handling.cpp - Non-local jumps as exceptions ----===//
//
// Paper §5 shows the copy-in/copy-out semantics "allows for the treatment
// of the setjmp and longjmp primitives of C": a jump to a non-local label
// unwinds the activations in between, exactly like raising an exception
// to a handler. This example analyzes a parser-like program that bails
// out to an error handler from deep inside a recursive routine — the
// abstract debugger tracks the abstract state *through the unwinding* and
// proves what holds at the handler.
//
// Build & run:  ./build/examples/exception_handling
//
//===----------------------------------------------------------------------===//

#include "core/AbstractDebugger.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace syntox;

/// A tiny "parser" that reads tokens until 0 (end) and "raises" on a
/// negative token by jumping out of two activation levels straight to the
/// handler label. errorcode is only ever assigned right before the jump,
/// so at the handler it is provably in [1, 99].
static const char *const Program = R"pas(
program parser;
label 99;
var errorcode, count, tok : integer;

procedure fail(code : integer);
begin
  if code < 1 then
    errorcode := 1
  else if code > 99 then
    errorcode := 99
  else
    errorcode := code;
  goto 99
end;

procedure parseitem;
begin
  read(tok);
  if tok < 0 then
    fail(-tok)
  else if tok > 1000 then
    fail(98);
  count := count + 1
end;

begin
  errorcode := 0;
  count := 0;
  tok := 1;
  while tok <> 0 do
    parseitem;
  writeln(count);

  99:
  if errorcode > 0 then
    writeln(-errorcode)
end.
)pas";

int main() {
  std::printf("=== Exceptions via non-local goto (paper section 5) ===\n\n");
  std::printf("%s\n", Program);

  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Program, Diags);
  if (!Dbg) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Dbg->analyze();

  std::printf("--- Abstract state at the handler ---\n");
  for (const PointState &S : Dbg->mainStates("label 99")) {
    std::printf("%s %s:", S.Loc.str().c_str(), S.PointDesc.c_str());
    for (const StateBinding &B : S.Bindings)
      std::printf(" %s=%s", B.Var.c_str(), B.Value.c_str());
    std::printf("\n");
  }
  std::printf("\n");
  std::printf("The analysis proves errorcode in [0, 99] at the handler:\n"
              "0 on normal exit through the loop, [1, 99] when any\n"
              "activation of fail() raised — the jump unwinds parseitem\n"
              "and fail, and the copied-out state flows to the label.\n\n");

  // Concrete confirmation.
  Interpreter I(Dbg->program());
  struct Run {
    const char *What;
    std::vector<int64_t> Inputs;
  } Runs[] = {
      {"clean input (3 items)", {5, 7, 9, 0}},
      {"negative token raises", {5, -42, 9, 0}},
      {"oversized token raises", {5, 2000, 0}},
  };
  for (const Run &R : Runs) {
    Interpreter::Options Opts;
    Opts.Inputs = R.Inputs;
    Interpreter::Result Res = I.run(Opts);
    std::printf("  %-24s -> %s: %s", R.What,
                Res.St == Interpreter::Status::Ok ? "ok" : "error",
                Res.Output.c_str());
  }
  return 0;
}
