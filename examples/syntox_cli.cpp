//===- examples/syntox_cli.cpp - Command-line abstract debugger -----------===//
//
// A CLI replica of the Syntox session of Figure 2: give it a Pascal file
// (or pipe source to stdin) and it prints the derived necessary
// conditions, invariant warnings, check classification, abstract states
// and the analysis statistics.
//
// Usage:
//   syntox_cli [options] [file.pas]
//     --terminate     add the goal "the program must terminate"
//     --rounds=N      backward/forward refinement rounds (default 1)
//     --states        print the abstract state at every program point
//     --no-backward   forward analysis only
//     --strategy=S    chaotic iteration strategy: recursive (default),
//                     worklist, or parallel
//     --threads=N     worker threads for --strategy=parallel
//                     (0 = all hardware threads)
//     --cache         enable the memoizing transfer-function cache
//                     (off by default: it only pays for expensive
//                     transfer functions)
//     --no-cache      disable the transfer-function cache
//
//===----------------------------------------------------------------------===//

#include "core/AbstractDebugger.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace syntox;

static void usage() {
  std::fprintf(stderr,
               "usage: syntox_cli [--terminate] [--rounds=N] [--states] "
               "[--no-backward] [--strategy=recursive|worklist|parallel] "
               "[--threads=N] [--cache] [--no-cache] [file.pas]\n");
}

int main(int Argc, char **Argv) {
  AbstractDebugger::Options Opts;
  bool PrintStates = false;
  std::string Path;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--terminate") {
      Opts.Analysis.TerminationGoal = true;
    } else if (Arg.rfind("--rounds=", 0) == 0) {
      Opts.Analysis.BackwardRounds =
          static_cast<unsigned>(std::atoi(Arg.c_str() + 9));
    } else if (Arg == "--states") {
      PrintStates = true;
    } else if (Arg == "--no-backward") {
      Opts.Analysis.UseBackward = false;
    } else if (Arg.rfind("--strategy=", 0) == 0) {
      std::string Name = Arg.substr(11);
      if (Name == "recursive") {
        Opts.Analysis.Strategy = IterationStrategy::Recursive;
      } else if (Name == "worklist") {
        Opts.Analysis.Strategy = IterationStrategy::Worklist;
      } else if (Name == "parallel") {
        Opts.Analysis.Strategy = IterationStrategy::Parallel;
      } else {
        std::fprintf(stderr, "syntox_cli: unknown strategy '%s'\n",
                     Name.c_str());
        usage();
        return 2;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Opts.Analysis.NumThreads =
          static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    } else if (Arg == "--cache") {
      Opts.Analysis.UseTransferCache = true;
    } else if (Arg == "--no-cache") {
      Opts.Analysis.UseTransferCache = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }

  std::string Source;
  if (Path.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "syntox_cli: cannot open '%s'\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());
  if (!Dbg)
    return 1;

  Dbg->analyze();

  std::printf("*** Checking syntax... ok\n");
  if (!Dbg->someExecutionMaySatisfySpec())
    std::printf("*** NO execution satisfies the specification: the "
                "program certainly loops or fails\n");

  std::printf("*** Correctness conditions\n");
  for (const NecessaryCondition &C : Dbg->conditions())
    std::printf("  %s\n", C.str().c_str());
  if (Dbg->conditions().empty())
    std::printf("  (none)\n");

  std::printf("*** Invariant assertions\n");
  for (const InvariantWarning &W : Dbg->invariantWarnings())
    std::printf("  %s: warning: %s\n", W.Loc.str().c_str(),
                W.Message.c_str());
  if (Dbg->invariantWarnings().empty())
    std::printf("  (all discharged)\n");

  std::printf("*** Runtime checks\n");
  for (const CheckResult &R : Dbg->checks().results())
    std::printf("  %s\n",
                R.str(Dbg->analyzer().storeOps().domain()).c_str());

  if (PrintStates)
    std::printf("*** Abstract states\n%s", Dbg->stateReport().c_str());

  std::printf("%s", Dbg->stats().str().c_str());
  return 0;
}
