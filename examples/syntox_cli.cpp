//===- examples/syntox_cli.cpp - Command-line abstract debugger -----------===//
//
// A CLI replica of the Syntox session of Figure 2: give it a Pascal file
// (or pipe source to stdin) and it prints the derived necessary
// conditions, invariant warnings, check classification, abstract states
// and the analysis statistics — or, with --format=json, one stable
// machine-readable findings document (schemas/findings.schema.json).
//
// Usage:
//   syntox_cli [options] [file.pas]
//     --format=text|json   output encoding (default text)
//     --states             include the abstract state at every point
//     --state-at=LINE[:COL] the abstract state at one source location
//     --query=point:LINE[:COL] | --query=assertion:ID
//                          demand-driven query: solve only the
//                          dependency cone of one point / runtime check
//   plus every shared analysis/telemetry flag (see --help): --terminate,
//   --rounds=N, --strategy=S, --threads=N, --cache/--no-cache,
//   --trace=FILE, --trace-format=json|chrome, --metrics-json=FILE, ...
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisFlags.h"
#include "core/AnalysisRequest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace syntox;

static void usage() {
  std::fprintf(stderr,
               "usage: syntox_cli [options] [file.pas]\n"
               "  --format=text|json   output encoding (default text)\n"
               "  --states             print the abstract state at every "
               "program point\n"
               "  --state-at=LINE[:COL]\n"
               "                       print the abstract state at one "
               "source location\n"
               "  --query=point:LINE[:COL] | --query=assertion:ID\n"
               "                       demand-driven query: solve only "
               "the dependency cone\n"
               "                       of one source point / one runtime "
               "check id\n"
               "%s",
               analysisFlagsHelp());
}

static void printStates(const std::vector<PointState> &States) {
  for (const PointState &S : States) {
    std::printf("  %s %s:", S.Loc.str().c_str(), S.PointDesc.c_str());
    if (!S.InEnvelope) {
      std::printf(" %s\n", S.Reachable ? "(excluded by specification)"
                                       : "(unreachable)");
      continue;
    }
    if (S.Bindings.empty() && S.PrunedVars.empty())
      std::printf(" top");
    for (const StateBinding &B : S.Bindings)
      std::printf(" %s=%s", B.Var.c_str(), B.Value.c_str());
    // Dead slots the liveness pruning stopped tracking (DESIGN.md §12):
    // they read as top here; --no-prune recovers the concrete value.
    for (const std::string &P : S.PrunedVars)
      std::printf(" %s=top(pruned)", P.c_str());
    std::printf("\n");
  }
}

int main(int Argc, char **Argv) {
  AnalysisOptions Opts;
  TelemetryFlags Telem;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  std::string Error;
  if (!parseAnalysisFlags(Args, Opts, Telem, Error)) {
    std::fprintf(stderr, "syntox_cli: %s\n", Error.c_str());
    usage();
    return 2;
  }

  bool JsonOutput = false;
  bool PrintAllStates = false;
  SourceLoc StateLoc;
  bool HaveQuery = false;
  DemandSpec Query;
  std::string Path;
  for (const std::string &Arg : Args) {
    if (Arg == "--states") {
      PrintAllStates = true;
    } else if (Arg.rfind("--format=", 0) == 0) {
      std::string Name = Arg.substr(9);
      if (Name == "json") {
        JsonOutput = true;
      } else if (Name == "text") {
        JsonOutput = false;
      } else {
        std::fprintf(stderr, "syntox_cli: unknown format '%s'\n",
                     Name.c_str());
        usage();
        return 2;
      }
    } else if (Arg.rfind("--state-at=", 0) == 0) {
      std::string Spec = Arg.substr(11);
      size_t Colon = Spec.find(':');
      StateLoc.Line =
          static_cast<uint32_t>(std::atoi(Spec.substr(0, Colon).c_str()));
      if (Colon != std::string::npos)
        StateLoc.Column =
            static_cast<uint32_t>(std::atoi(Spec.c_str() + Colon + 1));
      if (StateLoc.Line == 0) {
        std::fprintf(stderr, "syntox_cli: invalid --state-at '%s'\n",
                     Spec.c_str());
        return 2;
      }
    } else if (Arg.rfind("--query=", 0) == 0) {
      // The same query grammar the serve protocol accepts — one
      // parser for both drivers.
      if (!parseQuerySpec(Arg.substr(8), Query, Error)) {
        std::fprintf(stderr, "syntox_cli: %s\n", Error.c_str());
        return 2;
      }
      HaveQuery = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "syntox_cli: unknown option '%s'\n",
                   Arg.c_str());
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }

  std::string Source;
  if (Path.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "syntox_cli: cannot open '%s'\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Source, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());
  if (!Session)
    return 1;

  configureSessionTelemetry(*Session, Telem);

  // One runner for both paths — the same shared submission model the
  // batch scheduler and syntox_serve drive.
  AnalysisOutcome Outcome = runRequest(
      *Session,
      HaveQuery ? std::optional<DemandSpec>(Query) : std::nullopt);
  if (!Outcome.OK) {
    std::fprintf(stderr, "syntox_cli: %s\n", Outcome.Error.c_str());
    return 1;
  }

  if (HaveQuery) {
    // Demand-driven path: the query's dependency cone only, partial
    // findings.
    const DemandResult &R = *Outcome.Demand;
    if (JsonOutput) {
      std::printf("%s\n", R.toJson().pretty().c_str());
    } else {
      const AnalysisStats &S = R.stats();
      if (Query.K == DemandSpec::Kind::Point) {
        std::printf("*** Demand query: point %s\n",
                    Query.Loc.str().c_str());
        printStates(R.states());
        if (R.states().empty())
          std::printf("  (no control point at this location)\n");
      } else {
        std::printf("*** Demand query: runtime check %u\n",
                    Query.CheckId);
        const IntervalDomain &D = R.analyzer().storeOps().domain();
        std::printf("  %s\n", R.check()->str(D).c_str());
      }
      std::printf("*** Cone conditions\n");
      for (const NecessaryCondition &C : R.conditions())
        std::printf("  %s\n", C.str().c_str());
      if (R.conditions().empty())
        std::printf("  (none)\n");
      std::printf("%s", S.str().c_str());
    }
    if (!writeTelemetryOutputs(*Session, Telem, Error)) {
      std::fprintf(stderr, "syntox_cli: %s\n", Error.c_str());
      return 1;
    }
    return 0;
  }

  const AnalysisResult &Result = *Outcome.Result;

  if (JsonOutput) {
    json::Value Doc = Result.toJson();
    if (PrintAllStates || StateLoc.isValid()) {
      json::Value States = json::Value::array();
      for (const PointState &S : PrintAllStates
                                     ? Result.mainStates()
                                     : Result.stateAt(StateLoc))
        States.push(S.toJson());
      Doc.set("states", std::move(States));
    }
    std::printf("%s\n", Doc.pretty().c_str());
  } else {
    std::printf("*** Checking syntax... ok\n");
    if (!Result.someExecutionMaySatisfySpec())
      std::printf("*** NO execution satisfies the specification: the "
                  "program certainly loops or fails\n");

    std::printf("*** Correctness conditions\n");
    for (const NecessaryCondition &C : Result.conditions())
      std::printf("  %s\n", C.str().c_str());
    if (Result.conditions().empty())
      std::printf("  (none)\n");

    std::printf("*** Invariant assertions\n");
    for (const InvariantWarning &W : Result.invariantWarnings())
      std::printf("  %s: warning: %s\n", W.Loc.str().c_str(),
                  W.Message.c_str());
    if (Result.invariantWarnings().empty())
      std::printf("  (all discharged)\n");

    std::printf("*** Runtime checks\n");
    const IntervalDomain &D = Result.analyzer().storeOps().domain();
    for (const CheckResult &R : Result.checks().results())
      std::printf("  %s\n", R.str(D).c_str());

    if (PrintAllStates) {
      std::printf("*** Abstract states\n");
      printStates(Result.mainStates());
    }
    if (StateLoc.isValid()) {
      std::printf("*** Abstract state at %s\n", StateLoc.str().c_str());
      printStates(Result.stateAt(StateLoc));
    }

    std::printf("%s", Result.stats().str().c_str());
  }

  if (!writeTelemetryOutputs(*Session, Telem, Error)) {
    std::fprintf(stderr, "syntox_cli: %s\n", Error.c_str());
    return 1;
  }
  return 0;
}
