//===- examples/mccarthy_study.cpp - The paper's §6.5 McCarthy case study -===//
//
// Reproduces the three McCarthy-91 findings of the paper:
//  1. with `invariant(n <= 101)` at the function entry, the analysis
//     proves m = 91 at the end,
//  2. with `intermittent(m = 91)` before the output, the necessary
//     condition n <= 101 appears right after read(n),
//  3. in the buggy generalization (81 replaced by 71), the analysis shows
//     that termination requires n > 100 — i.e. the program loops for
//     every n <= 100; the concrete interpreter confirms it.
//
// Build & run:  ./build/examples/mccarthy_study
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "frontend/PaperPrograms.h"
#include "interp/Interpreter.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <cstdio>
#include <optional>

using namespace syntox;

static std::optional<AnalysisResult>
analyze(const std::string &Source, bool TerminationGoal = false) {
  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(
      Source, Diags, AnalysisOptions().terminationGoal(TerminationGoal));
  if (!Session) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return std::nullopt;
  }
  return Session->run();
}

int main() {
  std::printf("=== McCarthy 91 case study (paper section 6.5) ===\n\n");

  // --- 1. The invariant proves the result ------------------------------
  std::printf("[1] mc with invariant(n <= 101) at the entry:\n");
  if (auto Result = analyze(paper::McCarthyWithInvariant)) {
    for (const PointState &S :
         Result->debugger().mainStates("exit of mccarthy")) {
      std::printf("%s %s:", S.Loc.str().c_str(), S.PointDesc.c_str());
      for (const StateBinding &B : S.Bindings)
        std::printf(" %s=%s", B.Var.c_str(), B.Value.c_str());
      std::printf("\n");
    }
    std::printf("    => the analysis proves m = 91 whenever mc returns\n\n");
  }

  // --- 2. The intermittent assertion back-propagates -------------------
  std::printf("[2] mc with intermittent(m = 91) before writeln:\n");
  std::string WithIntermittent = paper::McCarthyProgram;
  size_t Pos = WithIntermittent.find("writeln(m)");
  WithIntermittent.insert(Pos, "intermittent(m = 91);\n  ");
  if (auto Result = analyze(WithIntermittent)) {
    for (const NecessaryCondition &C : Result->conditions())
      std::printf("    %s\n", C.str().c_str());
    std::printf("    => reaching the output with m = 91 requires"
                " n <= 101 at the read\n\n");
  }

  // --- 3. The buggy generalization -------------------------------------
  std::printf("[3] buggy generalization (n + 71 instead of n + 81):\n");
  if (auto Result = analyze(paper::McCarthyBuggy, /*TerminationGoal=*/true)) {
    for (const NecessaryCondition &C : Result->conditions())
      std::printf("    %s\n", C.str().c_str());
  }

  // Confirm with the concrete interpreter: n = 0 must loop, n = 150 must
  // terminate.
  AstContext Ctx;
  DiagnosticsEngine Diags;
  Lexer L(paper::McCarthyBuggy, Diags);
  Parser P(L.lexAll(), Ctx, Diags);
  RoutineDecl *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  S.analyze(Prog);
  Interpreter I(Prog);
  for (int64_t N : {0, 50, 100, 101, 150}) {
    Interpreter::Options Opts;
    Opts.Inputs = {N};
    Opts.MaxSteps = 500000;
    Interpreter::Result R = I.run(Opts);
    std::printf("    concrete mc(%lld): %s\n", (long long)N,
                R.St == Interpreter::Status::Ok
                    ? ("terminates, prints " + R.Output).c_str()
                    : "does NOT terminate (loops)");
  }
  std::printf("    => exactly as predicted: loops for n <= 100\n");
  return 0;
}
