//===- examples/quickstart.cpp - First steps with the abstract debugger ---===//
//
// Analyzes the paper's Figure 1 `For` program: the loop `for i := 0 to n
// do read(T[i])` always breaks the array bounds when it runs, so the
// debugger derives the necessary condition n < 0 right after read(n) —
// the *origin* of the bug, not its occurrence.
//
// Uses the AnalysisSession/AnalysisResult API: the session holds the
// validated program and configuration, run() returns immutable findings.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"

#include <cstdio>

using namespace syntox;

static const char *const Program = R"pas(
program forprog;
var i, n : integer;
    T : array [1..100] of integer;
begin
  read(n);
  for i := 0 to n do
    read(T[i])
end.
)pas";

int main() {
  std::printf("=== Syntox++ quickstart ===\n\nAnalyzing:\n%s\n", Program);

  DiagnosticsEngine Diags;
  auto Session = AnalysisSession::create(Program, Diags);
  if (!Session) {
    std::fprintf(stderr, "frontend errors:\n%s", Diags.str().c_str());
    return 1;
  }
  AnalysisResult Result = Session->run();

  std::printf("--- Necessary conditions of correctness ---\n");
  for (const NecessaryCondition &C : Result.conditions())
    std::printf("  %s\n", C.str().c_str());
  if (Result.conditions().empty())
    std::printf("  (none: the program is correct for every input)\n");

  std::printf("\n--- Runtime checks ---\n");
  const IntervalDomain &D = Result.analyzer().storeOps().domain();
  for (const CheckResult &R : Result.checks().results())
    std::printf("  %s\n", R.str(D).c_str());

  // The structured statement inspector: the state after `read(n)` on
  // line 6 shows the derived bound on n.
  std::printf("\n--- Abstract state at line 6 (after read(n)) ---\n");
  for (const PointState &S : Result.stateAt(SourceLoc(6, 0))) {
    std::printf("  %s %s:", S.Loc.str().c_str(), S.PointDesc.c_str());
    for (const StateBinding &B : S.Bindings)
      std::printf(" %s=%s", B.Var.c_str(), B.Value.c_str());
    std::printf("\n");
  }

  std::printf("\n--- Analysis statistics (Figure 2 style) ---\n%s",
              Result.stats().str().c_str());

  // Findings are also available as one stable JSON document:
  //   Result.toJson().pretty()
  // and solver metrics as Session->metrics().snapshot().
  return 0;
}
