//===- examples/quickstart.cpp - First steps with the abstract debugger ---===//
//
// Analyzes the paper's Figure 1 `For` program: the loop `for i := 0 to n
// do read(T[i])` always breaks the array bounds when it runs, so the
// debugger derives the necessary condition n < 0 right after read(n) —
// the *origin* of the bug, not its occurrence.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AbstractDebugger.h"

#include <cstdio>

using namespace syntox;

static const char *const Program = R"pas(
program forprog;
var i, n : integer;
    T : array [1..100] of integer;
begin
  read(n);
  for i := 0 to n do
    read(T[i])
end.
)pas";

int main() {
  std::printf("=== Syntox++ quickstart ===\n\nAnalyzing:\n%s\n", Program);

  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Program, Diags);
  if (!Dbg) {
    std::fprintf(stderr, "frontend errors:\n%s", Diags.str().c_str());
    return 1;
  }
  Dbg->analyze();

  std::printf("--- Necessary conditions of correctness ---\n");
  for (const NecessaryCondition &C : Dbg->conditions())
    std::printf("  %s\n", C.str().c_str());
  if (Dbg->conditions().empty())
    std::printf("  (none: the program is correct for every input)\n");

  std::printf("\n--- Runtime checks ---\n");
  for (const CheckResult &R : Dbg->checks().results())
    std::printf("  %s\n",
                R.str(Dbg->analyzer().storeOps().domain()).c_str());

  std::printf("\n--- Abstract states at selected points ---\n%s",
              Dbg->stateReport("read").c_str());

  std::printf("\n--- Analysis statistics (Figure 2 style) ---\n%s",
              Dbg->stats().str().c_str());
  return 0;
}
