# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/interval_property_test[1]_include.cmake")
include("/root/repo/build/tests/bool_lattice_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/wto_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/checks_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/expr_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/interproc_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cfgdot_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_options_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_random_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_cache_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_solver_test[1]_include.cmake")
